"""Tuning of scheduling parameters (paper Sec. IV-A and future work).

"In this work we use naive grid search to find the optimal parameters under
a given input shape ... it is an interesting future direction to try more
intelligent tuners [37], [38] for faster design space exploration."

This module provides the paper's :class:`GridTuner` plus two of the
"intelligent" alternatives it points to: :class:`RandomTuner` (random search
with a trial budget) and :class:`AnnealingTuner` (simulated annealing over
neighboring configurations, the strategy at the core of OpenTuner/AutoTVM's
exploration loops).  The tunable space combines template parameters (number
of graph partitions, number of CUDA blocks) with FDS parameters (feature
tiling factors); the objective is the machine-model cost.  The Fig. 14 bench
sweeps the grid; ``bench_ablation_tuners.py`` compares the three tuners'
cost-vs-trials trade-off.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.hwsim.report import CostReport

__all__ = ["GridTuner", "RandomTuner", "AnnealingTuner", "TuneResult"]


@dataclass
class TuneResult:
    """Outcome of a grid search."""

    best_config: dict
    best_cost: CostReport
    #: every evaluated point: (config dict, modeled seconds)
    trials: list[tuple[dict, float]] = field(default_factory=list)
    #: configs rejected by the static analyzer before evaluation:
    #: (config dict, AnalysisReport with error diagnostics)
    pruned: list = field(default_factory=list)

    def landscape(self, x_key: str, y_key: str) -> dict[tuple, float]:
        """Project trials onto two config keys -> seconds (for heatmaps)."""
        out = {}
        for cfg, secs in self.trials:
            out[(cfg[x_key], cfg[y_key])] = secs
        return out


#: sentinel cost recorded for analyzer-pruned configurations: never the
#: argmin, keeps trial bookkeeping and RNG sequences unchanged
_PRUNED_SECONDS = float("inf")


class _TrialMemo:
    """Per-tuner memoization of ``evaluate`` by config, plus analyzer gating.

    Tuners that revisit configurations (annealing walks, repeated random
    samples) would otherwise rebuild the same kernel; together with the
    process-wide :class:`~repro.core.compile.KernelCache` -- which already
    dedups the *lowering* across trials -- a repeated config costs nothing.
    Trials are still recorded per visit, and the tuners' RNG sequences are
    unaffected, so tuning results are bit-identical with or without it.

    With an ``analyzer`` -- a callable mapping a config dict to an
    :class:`~repro.tensorir.analysis.AnalysisReport` (or None to skip) --
    configs with error-severity diagnostics are **pruned before
    evaluation**: ``evaluate`` never runs for them, they enter the trial
    log with infinite cost (so the exploration path, including annealing
    acceptance decisions and RNG draws, is unchanged), and the (config,
    report) pairs surface on :attr:`TuneResult.pruned`.
    """

    def __init__(self, evaluate: Callable[[dict], CostReport],
                 cache_trials: bool, analyzer=None):
        self.evaluate = evaluate
        self.cache_trials = bool(cache_trials)
        self.analyzer = analyzer
        self._memo: dict[tuple, CostReport] = {}
        self._pruned: dict[tuple, dict] = {}
        self.pruned: list = []

    def _evaluate(self, cfg: dict) -> CostReport:
        key = tuple(sorted(cfg.items()))
        if self.analyzer is not None:
            if key not in self._pruned:
                report = self.analyzer(cfg)
                bad = report is not None and report.has_errors
                self._pruned[key] = report if bad else None
                if bad:
                    self.pruned.append((dict(cfg), report))
            if self._pruned[key] is not None:
                return CostReport(seconds=_PRUNED_SECONDS)
        if not self.cache_trials:
            return self.evaluate(cfg)
        if key not in self._memo:
            self._memo[key] = self.evaluate(cfg)
        return self._memo[key]

    def _result(self, best_cfg, best_cost, trials) -> TuneResult:
        assert best_cfg is not None and best_cost is not None
        if self.pruned and best_cost.seconds == _PRUNED_SECONDS:
            reports = "\n".join(
                f"  {cfg}: {report.errors[0].render()}"
                for cfg, report in self.pruned)
            raise ValueError(
                "every explored configuration was pruned by the static "
                "analyzer:\n" + reports)
        return TuneResult(best_config=best_cfg, best_cost=best_cost,
                          trials=trials, pruned=list(self.pruned))


class GridTuner(_TrialMemo):
    """Exhaustive search over a cartesian parameter grid.

    ``space`` maps parameter name -> candidate values.  ``evaluate`` maps a
    config dict to a :class:`CostReport` (typically a closure that builds a
    kernel with those scheduling parameters and calls ``cost()``).
    """

    def __init__(self, space: Mapping[str, Sequence],
                 evaluate: Callable[[dict], CostReport],
                 cache_trials: bool = True, analyzer=None):
        if not space:
            raise ValueError("empty search space")
        for k, v in space.items():
            if not len(v):
                raise ValueError(f"parameter {k!r} has no candidates")
        super().__init__(evaluate, cache_trials, analyzer)
        self.space = {k: list(v) for k, v in space.items()}

    def configs(self) -> Iterable[dict]:
        keys = list(self.space)
        for combo in itertools.product(*(self.space[k] for k in keys)):
            yield dict(zip(keys, combo))

    def tune(self) -> TuneResult:
        """Evaluate every config; return the argmin with the full landscape."""
        best_cfg: dict | None = None
        best_cost: CostReport | None = None
        trials: list[tuple[dict, float]] = []
        for cfg in self.configs():
            cost = self._evaluate(cfg)
            trials.append((cfg, cost.seconds))
            if best_cost is None or cost.seconds < best_cost.seconds:
                best_cfg, best_cost = cfg, cost
        return self._result(best_cfg, best_cost, trials)


class RandomTuner(_TrialMemo):
    """Random search with a fixed trial budget over the same space syntax."""

    def __init__(self, space: Mapping[str, Sequence],
                 evaluate: Callable[[dict], CostReport],
                 num_trials: int = 16, seed: int = 0,
                 cache_trials: bool = True, analyzer=None):
        if not space or any(not len(v) for v in space.values()):
            raise ValueError("empty search space")
        if num_trials < 1:
            raise ValueError("num_trials must be >= 1")
        super().__init__(evaluate, cache_trials, analyzer)
        self.space = {k: list(v) for k, v in space.items()}
        self.num_trials = num_trials
        self.rng = random.Random(seed)

    def _sample(self) -> dict:
        return {k: self.rng.choice(v) for k, v in self.space.items()}

    def tune(self) -> TuneResult:
        best_cfg: dict | None = None
        best_cost: CostReport | None = None
        trials: list[tuple[dict, float]] = []
        seen: set[tuple] = set()
        for _ in range(self.num_trials):
            cfg = self._sample()
            key = tuple(sorted(cfg.items()))
            if key in seen:
                continue
            seen.add(key)
            cost = self._evaluate(cfg)
            trials.append((cfg, cost.seconds))
            if best_cost is None or cost.seconds < best_cost.seconds:
                best_cfg, best_cost = cfg, cost
        return self._result(best_cfg, best_cost, trials)


class AnnealingTuner(_TrialMemo):
    """Simulated annealing over neighboring configurations.

    A neighbor differs in exactly one parameter, moved one step along its
    candidate list (the natural topology for power-of-two partition factors).
    Worse moves are accepted with probability ``exp(-delta / T)``; the
    temperature decays geometrically each trial.
    """

    def __init__(self, space: Mapping[str, Sequence],
                 evaluate: Callable[[dict], CostReport],
                 num_trials: int = 24, seed: int = 0,
                 initial_temperature: float = 0.5, cooling: float = 0.85,
                 cache_trials: bool = True, analyzer=None):
        if not space or any(not len(v) for v in space.values()):
            raise ValueError("empty search space")
        if num_trials < 1:
            raise ValueError("num_trials must be >= 1")
        if not (0 < cooling < 1):
            raise ValueError("cooling must be in (0, 1)")
        super().__init__(evaluate, cache_trials, analyzer)
        self.space = {k: list(v) for k, v in space.items()}
        self.num_trials = num_trials
        self.rng = random.Random(seed)
        self.t0 = initial_temperature
        self.cooling = cooling

    def _neighbor(self, cfg: dict) -> dict:
        key = self.rng.choice(list(self.space))
        values = self.space[key]
        idx = values.index(cfg[key])
        step = self.rng.choice((-1, 1))
        new_idx = min(len(values) - 1, max(0, idx + step))
        out = dict(cfg)
        out[key] = values[new_idx]
        return out

    def tune(self) -> TuneResult:
        current = {k: self.rng.choice(v) for k, v in self.space.items()}
        current_cost = self._evaluate(current)
        best_cfg, best_cost = current, current_cost
        trials: list[tuple[dict, float]] = [(current, current_cost.seconds)]
        temperature = self.t0
        for _ in range(self.num_trials - 1):
            cand = self._neighbor(current)
            cost = self._evaluate(cand)
            trials.append((cand, cost.seconds))
            if math.isinf(current_cost.seconds):
                # current is an analyzer-pruned point: always step off it
                # onto any finite-cost neighbor.
                if cost.seconds < current_cost.seconds:
                    current, current_cost = cand, cost
            else:
                delta = (cost.seconds - current_cost.seconds) / max(
                    current_cost.seconds, 1e-12)
                if delta <= 0 or self.rng.random() < math.exp(-delta / max(
                        temperature, 1e-9)):
                    current, current_cost = cand, cost
            if cost.seconds < best_cost.seconds:
                best_cfg, best_cost = cand, cost
            temperature *= self.cooling
        return self._result(best_cfg, best_cost, trials)
