"""The generalized SpMM template (vertex-wise computations, paper Eq. 1).

For every destination vertex ``v``, computes::

    H[v] = aggregate_{u in N(v)} msgfunc(u, v, eid(u, v))

The template owns the graph-traversal optimizations (Sec. III-C1):

- **1D graph partitioning** of source vertices, so each pass's source
  feature working set fits in cache; partial aggregations merge at the end;
- **feature dimension tiling**, taken from the user's FDS split factor, so
  partitioning and tiling compose as in Fig. 6b;
- on GPU, the Fig. 7a parallelization (rows across blocks, feature elements
  across threads) and optional **hybrid degree partitioning** (Sec. III-C3).

Numerical execution runs the UDF through the vectorized evaluator in
row-aligned edge chunks (the fused-kernel equivalent: messages are never
materialized for the whole edge set, only for the in-flight chunk);
aggregation uses segmented reductions over CSR order.  ``cost()`` reports
the machine-model time for the paper-scale graph.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

import numpy as np

from repro.core import cost as cost_analysis
from repro.core.api import SparseMat
from repro.core.bindings import validate_bindings
from repro.runtime.engine import AggregateSink, Executor
from repro.runtime.plan import (CHUNK_WORKSET_BYTES, MIN_CHUNK_EDGES,
                                ChunkPolicy, EdgeTask, ExecutionPlan,
                                GatherPlan, Stage, effective_chunk_edges,
                                row_aligned_chunks)
from repro.runtime.histogram import chunk_bounds, chunk_shapes, degree_stats
from repro.runtime.reducers import AGG_IDENTITY, AGG_UFUNC, resolve_reducer
from repro.runtime.strategies import (make_strategy, resolve_request,
                                      resolve_strategy,
                                      select_chunk_strategies)
from repro.tensorir.runtime import ExecStats, WorkPool
from repro.core.fds import FDS, FDSInfo, default_fds
from repro.graph.partition import Partition1D, feature_tiles, partition_1d
from repro.hwsim import cpu as cpu_model
from repro.hwsim import gpu as gpu_model
from repro.hwsim.report import CostReport
from repro.hwsim.spec import CPUSpec, GPUSpec, TESLA_V100, XEON_8124M
from repro.tensorir.evaluator import evaluate_batched
from repro.tensorir.expr import ComputeOp, Tensor, Var
from repro.tensorir.vectorize import VectorizeError, compile_batched, compile_enabled

__all__ = ["GeneralizedSpMM", "PARTITION_TARGET_BYTES", "resolve_aggregation",
           "row_aligned_chunks", "AGG_UFUNC", "AGG_IDENTITY"]

#: working-set target per (partition, tile) pass; ~2 MB lands the paper's
#: Fig. 14 optimum (16 graph partitions on reddit at feature tile 32)
PARTITION_TARGET_BYTES = 2 * 1024 * 1024

#: "not compiled yet" marker for the lazily built vector program
_UNCOMPILED = object()

#: reducer ufunc/identity views from the runtime registry
#: (:mod:`repro.runtime.reducers`) -- every segmented reduction in the
#: repository, staged or fused, combines through the same tables
_AGG_UFUNC = AGG_UFUNC
_AGG_IDENTITY = AGG_IDENTITY


def resolve_aggregation(aggregation) -> str:
    """Accept "sum"/"max"/... strings or the tensorir reduction builders."""
    if isinstance(aggregation, str):
        name = aggregation.lower()
        if name in ("sum", "max", "min", "mean", "prod"):
            return name
        raise ValueError(f"unknown aggregation {aggregation!r}")
    from repro.tensorir import expr as E

    mapping = {E.sum: "sum", E.max: "max", E.min: "min", E.prod: "prod"}
    try:
        return mapping[aggregation]
    except (KeyError, TypeError):
        raise ValueError(
            "aggregation must be a name or a tensorir reduction builder"
        ) from None


class GeneralizedSpMM:
    """A compiled generalized-SpMM kernel bound to one graph topology."""

    def __init__(
        self,
        A: SparseMat,
        msgfunc: Callable,
        aggregation="sum",
        target: str = "cpu",
        fds: FDS | Callable | None = None,
        *,
        num_graph_partitions: int | str = "auto",
        num_feature_partitions: int | str = "auto",
        hybrid_partitioning: bool = False,
        degree_threshold: int | None = None,
        num_cuda_blocks: int | None = None,
        chunk_edges: int = 1 << 17,
        _compiled=None,
    ):
        if target not in ("cpu", "gpu"):
            raise ValueError(f"unknown target {target!r}")
        self.A = A
        self.target = target
        self.aggregation = resolve_aggregation(aggregation)
        self.msgfunc = msgfunc
        self._stage = None
        self._compile_record = None
        self._vector_program = _UNCOMPILED
        self.exec_stats = ExecStats()
        if _compiled is not None:
            # Constructed by the compile pipeline: the front passes already
            # traced the UDF and applied/validated the FDS -- or, on the
            # template-bind path, another topology's kernel did and this one
            # inherits the trace.  bound_roles (bind path only) switches
            # binding validation to graph-axis semantics, since the
            # inherited placeholders carry the template's leading dims.
            self.fds = _compiled.fds_obj
            self.src_var = _compiled.src_var
            self.dst_var = _compiled.dst_var
            self.eid_var = _compiled.eid_var
            msg = _compiled.out
            self.fds_info: FDSInfo = _compiled.fds_info
            self._stage = _compiled.stage
            self.graph_roles = getattr(_compiled, "bound_roles", None)
        else:
            if fds is None:
                self.fds = default_fds()
            elif isinstance(fds, FDS):
                self.fds = fds
            else:
                self.fds = FDS(fds)

            # Trace the UDF once, symbolically.
            self.src_var = Var("src")
            self.dst_var = Var("dst")
            self.eid_var = Var("eid")
            msg = msgfunc(self.src_var, self.dst_var, self.eid_var)
            if not isinstance(msg, Tensor) or not isinstance(msg.op, ComputeOp):
                raise TypeError("msgfunc must return a tensorir compute Tensor")
            if msg.ndim < 1:
                raise ValueError(
                    "message must have at least one feature dimension")
            self.fds_info = self.fds.inspect(msg, target=target)
            self.graph_roles = None
        self.msg = msg
        self.msg_shape = msg.shape
        self.feature_len = int(np.prod(msg.shape))
        self.reads_src = cost_analysis.reads_endpoint(msg, "src")
        self.reads_dst = cost_analysis.reads_endpoint(msg, "dst")
        self.udf_flops = cost_analysis.udf_flops_per_item(msg)

        # Resolve scheduling parameters (template params x FDS params).
        f0 = msg.shape[0]
        if num_feature_partitions == "auto":
            tile = self.fds_info.feature_tile
            self.num_feature_partitions = math.ceil(f0 / tile) if tile else 1
        else:
            self.num_feature_partitions = max(1, int(num_feature_partitions))
        self.num_feature_partitions = min(self.num_feature_partitions, f0)

        if target == "gpu":
            # GPU uses hybrid partitioning instead of 1D source partitioning.
            self.num_graph_partitions = 1
        elif num_graph_partitions == "auto":
            ft = math.ceil(f0 / self.num_feature_partitions)
            row_bytes = ft * int(np.prod(msg.shape[1:])) * 4
            ws = self.A.num_src * row_bytes
            self.num_graph_partitions = max(
                1, min(self.A.num_src, round(ws / PARTITION_TARGET_BYTES))
            )
        else:
            self.num_graph_partitions = max(1, int(num_graph_partitions))

        self.hybrid_partitioning = bool(hybrid_partitioning)
        self.degree_threshold = degree_threshold
        self.num_cuda_blocks = num_cuda_blocks
        if int(chunk_edges) < 1:
            raise ValueError("chunk_edges must be >= 1")
        self.chunk_edges = int(chunk_edges)
        #: aggregation-strategy request for this kernel (None = auto/env):
        #: a concrete name, ``"adaptive"`` (per-chunk cost-model
        #: selection), or a sequence of names (explicit per-chunk cycle);
        #: not part of the cache identity -- a bound kernel can be retargeted
        self.agg_strategy = None
        self._partitions: list[Partition1D] | None = None

    # ------------------------------------------------------------------
    def _graph_dims(self) -> dict:
        """Leading-dimension requirements of the bound topology, by role."""
        return {"n_src": self.A.num_src, "n_dst": self.A.num_dst,
                "m": self.A.nnz}

    @property
    def roles(self) -> dict:
        """Placeholder name -> graph-axis role ("n_src"/"n_dst"/"m"/"n_max").

        Bound kernels carry the template's roles; freshly compiled ones
        derive them from the traced UDF.  The fusion planner keys its
        legality rules (and binding validation) off this map."""
        if self.graph_roles is not None:
            return dict(self.graph_roles)
        from repro.core.bindings import graph_axis_roles

        return graph_axis_roles(self.msg)

    @property
    def partitions(self) -> list[Partition1D]:
        """Lazily materialized 1D source partitions."""
        if self._partitions is None:
            self._partitions = partition_1d(self.A.csr, self.num_graph_partitions)
        return self._partitions

    def _tiles(self) -> list[tuple[int, int]]:
        return feature_tiles(self.msg_shape[0], self.num_feature_partitions)

    # ------------------------------------------------------------------
    def run(self, bindings: Mapping[str, np.ndarray],
            out: np.ndarray | None = None,
            pool: "WorkPool | None" = None) -> np.ndarray:
        """Execute the kernel: returns ``(num_dst, *msg_shape)`` float32.

        The kernel lowers to an :class:`~repro.runtime.plan.ExecutionPlan`
        (one task per feature tile x graph partition) and the shared
        :class:`~repro.runtime.engine.Executor` runs it.  With ``pool``,
        partitions are processed cooperatively: all workers share one
        partition's chunks at a time (the LLC-contention-avoiding schedule
        of Sec. IV-A).
        """
        validate_bindings(self.msg, bindings, f"spmm[{self.msg.name}]",
                          graph_dims=self._graph_dims(),
                          graph_roles=self.graph_roles)
        reducer, _ = resolve_reducer(self.aggregation)
        acc = np.full((self.A.num_dst,) + self.msg_shape, reducer.identity,
                      dtype=np.float32)
        plan = self.execution_plan(acc, pool=pool)
        Executor(stats=self.exec_stats, pool=pool).run(plan, bindings)
        if out is not None:
            out[...] = acc
            return out
        return acc

    def execution_plan(self, acc: np.ndarray,
                       pool: WorkPool | None = None) -> ExecutionPlan:
        """Lower this bound kernel to an execution plan over ``acc``.

        One :class:`~repro.runtime.plan.EdgeTask` per (feature tile, graph
        partition) pass, each row-aligned-chunked -- chunk rows are disjoint
        and sorted, so segmented reduction is vectorized and chunks are
        race-free under cooperative threading.  The aggregation request is
        resolved from ``self.agg_strategy`` (explicit) >
        ``FEATGRAPH_AGG_STRATEGY`` (env) > the selector: a concrete name
        pins one strategy for the whole kernel, ``"adaptive"`` assigns a
        strategy **per chunk** from each chunk's shape statistics
        (cost-model-driven when calibrated), and a sequence of names pins
        an explicit per-chunk cycle.  Heterogeneous assignments land on
        :attr:`~repro.runtime.plan.EdgeTask.chunk_strategies`; chunk
        bounds, degree histograms, and per-chunk shapes come from the
        fingerprint-keyed caches in :mod:`repro.runtime.histogram`.
        """
        reducer, _ = resolve_reducer(self.aggregation)
        prog = self.vector_program() if compile_enabled() else None
        mode, names = resolve_request(self.agg_strategy)
        target = effective_chunk_edges(self.chunk_edges, prog)
        if mode in ("auto", "single"):
            strategy = resolve_strategy(
                names[0] if mode == "single" else None,
                degree_stats(self.A.csr).degrees, self.feature_len, pool)
            plan_label = strategy.name
            per_chunk = None
        else:
            # heterogeneous plan: every chunk carries its own assignment,
            # the sink default (reduceat) is never consulted
            strategy = make_strategy("reduceat", pool=pool)
            plan_label = "adaptive" if mode == "adaptive" else "mixed"
            instances = {"reduceat": strategy}

            def per_chunk(csr, n_chunks):
                if mode == "adaptive":
                    assigned = select_chunk_strategies(
                        chunk_shapes(csr, target, self.feature_len), pool)
                else:
                    assigned = [names[i % len(names)]
                                for i in range(n_chunks)]
                return [instances.setdefault(n, make_strategy(n, pool=pool))
                        for n in assigned]

        axis0 = self.msg.op.axis[0].name
        tasks = []
        for lo, hi in self._tiles():
            sink = AggregateSink(acc[:, lo:hi], reducer, strategy)
            tile_sizes = (hi - lo,) + self.msg_shape[1:]
            for part in self.partitions:
                csr = part.csr
                if csr.nnz == 0:
                    continue

                def evaluate(bindings, ctx, tile=(lo, hi), sizes=tile_sizes):
                    if prog is not None:
                        msgs = prog.run(bindings, ctx.batch,
                                        axis_ranges={axis0: tile})
                        return msgs, prog.bytes_moved(ctx.size, sizes)
                    msgs = evaluate_batched(self.msg, bindings, ctx.batch,
                                            axis_ranges={axis0: tile})
                    return msgs, 0

                bounds = chunk_bounds(csr, target)
                tasks.append(EdgeTask(
                    gather=GatherPlan(csr.indices, csr.row_of_edge(),
                                      csr.edge_ids),
                    bounds=bounds,
                    stages=[Stage(self.msg.name, evaluate, sink,
                                  compiled=prog is not None)],
                    chunk_strategies=(per_chunk(csr, len(bounds))
                                      if per_chunk is not None else None)))
        base = "sum" if self.aggregation == "mean" else self.aggregation
        return ExecutionPlan(
            tasks, label=f"spmm[{self.msg.name}]", strategy=plan_label,
            finalize=lambda: self._finalize(acc, base),
            # role extents + compiled program for the plan verifier
            # (:mod:`repro.runtime.verify`): FG010 checks gathers against
            # these, FG008 scans the program's out= retirement
            extras={"verify": {"dims": self._graph_dims(),
                               "programs": {self.msg.name: prog},
                               "target": f"spmm[{self.msg.name}]"}})

    def vector_program(self):
        """The compiled batched-UDF program this kernel executes per chunk
        (:mod:`repro.tensorir.vectorize`), or ``None`` when the UDF falls
        outside the vectorizer's subset and chunks run interpreted.  Set by
        the pipeline's ``vectorize`` pass; built lazily for kernels
        constructed directly."""
        if self._vector_program is _UNCOMPILED:
            try:
                self._vector_program = compile_batched(self.msg)
            except VectorizeError:
                self._vector_program = None
        return self._vector_program

    def _finalize(self, acc: np.ndarray, base: str) -> None:
        deg = np.diff(self.A.csr.indptr)
        untouched = deg == 0
        if base in ("max", "min", "prod") and untouched.any():
            acc[untouched] = 0.0
        if base in ("max", "min"):
            # Partitions with no edges for a row left identities behind only
            # for fully isolated rows, handled above.
            pass
        if self.aggregation == "mean":
            d = np.maximum(deg, 1).astype(np.float32)
            acc /= d.reshape((-1,) + (1,) * (acc.ndim - 1))

    # ------------------------------------------------------------------
    def cost(self, spec: CPUSpec | GPUSpec | None = None, *, threads: int = 1,
             stats=None, frame: cpu_model.CPUFrameParams | None = None) -> CostReport:
        """Machine-model execution time of this kernel.

        ``stats`` defaults to the bound graph's statistics; pass paper-scale
        stats to model the full-size runs.
        """
        if stats is None:
            stats = self.A.stats()
        if self.target == "cpu":
            cpu_spec = spec if isinstance(spec, CPUSpec) else XEON_8124M
            return cpu_model.spmm_time(
                cpu_spec, stats, self.feature_len,
                frame=frame or cpu_model.FEATGRAPH_CPU,
                udf_flops_per_edge=self.udf_flops,
                reads_dst=self.reads_dst,
                num_graph_partitions=self.num_graph_partitions,
                num_feature_partitions=self.num_feature_partitions,
                threads=threads,
            )
        gpu_spec = spec if isinstance(spec, GPUSpec) else TESLA_V100
        return gpu_model.spmm_row_block_time(
            gpu_spec, stats, self.feature_len,
            udf_flops_per_edge=self.udf_flops,
            hybrid_partitioning=self.hybrid_partitioning,
            num_blocks=self.num_cuda_blocks,
            kernel_efficiency=0.92,
        )

    # ------------------------------------------------------------------
    def fds_stage(self):
        """The FDS-applied schedule stage for the traced UDF (lazily built
        for directly constructed kernels; supplied by the pipeline's
        ``fuse_fds`` pass otherwise)."""
        if self._stage is None:
            sched = self.fds.apply(self.msg)
            self._stage = sched[self.msg]
        return self._stage

    @property
    def compiled(self):
        """This kernel's :class:`~repro.core.compile.CompileRecord`:
        lowering artifacts plus per-pass compile timings."""
        from repro.core.compile import ensure_compiled

        return ensure_compiled(self)

    def compile_timings(self) -> dict:
        """Per-pass wall-clock seconds spent compiling this kernel."""
        return self.compiled.timings_dict()

    def lowered_ir(self):
        """Representative fused-kernel IR.

        The loop-nest statement produced by the compile pipeline's ``lower``
        and ``simplify`` passes (see :mod:`repro.core.compile`): the
        feature-tile / graph-partition / row / edge traversal loops with the
        FDS-scheduled UDF inlined at the innermost level and the aggregation
        as a combine-store -- the paper's "directly constructing and
        manipulating the IR" (Sec. IV-A) made visible.  Pretty-print with
        :func:`repro.tensorir.ir.stmt_to_str`.

        Kernels bound from a cached template carry no lowering artifacts
        (binding skips the back passes); for those the loop nest is built
        on demand against this kernel's own topology.
        """
        artifacts = self.compiled.artifacts
        if "ir" not in artifacts:
            from repro.core.compile import spmm_loop_nest
            from repro.tensorir.simplify import simplify_stmt

            artifacts["ir"] = simplify_stmt(spmm_loop_nest(self))
        return artifacts["ir"]

    def analysis_report(self):
        """The :class:`~repro.tensorir.analysis.AnalysisReport` from the
        compile pipeline's ``analyze`` pass: race, bounds, and footprint
        diagnostics for this kernel's lowered loop nest.  Bound kernels
        inherit their template's report."""
        artifacts = self.compiled.artifacts
        if artifacts.get("analysis") is None:
            from repro.tensorir.analysis import analyze_ir

            artifacts["analysis"] = analyze_ir(self.lowered_ir(),
                                               target=self.target)
        return artifacts["analysis"]

    def verify_report(self):
        """The plan verifier's :class:`AnalysisReport` (rules FG006-FG010,
        :mod:`repro.runtime.verify`) for this kernel's execution plan.
        Set by the pipeline's ``verify_plan`` pass; computed on demand for
        bound or directly constructed kernels.  Unlike the loop-nest
        analysis this is topology-dependent, so bound kernels verify their
        own plan rather than inheriting the template's report."""
        artifacts = self.compiled.artifacts
        if artifacts.get("plan_verify") is None:
            from repro.runtime.verify import verify_kernel

            artifacts["plan_verify"] = verify_kernel(self)
        return artifacts["plan_verify"]

    def cuda_source(self, name: str = "fused_spmm") -> str:
        """CUDA C source of the fused generalized-SpMM kernel (the compile
        pipeline's ``codegen`` pass; see
        :func:`repro.core.compile.spmm_cuda_source`)."""
        from repro.core.compile import spmm_cuda_source

        return spmm_cuda_source(self, name=name)

    def __repr__(self):
        return (
            f"GeneralizedSpMM(target={self.target}, agg={self.aggregation}, "
            f"f={self.msg_shape}, graph_parts={self.num_graph_partitions}, "
            f"feat_parts={self.num_feature_partitions})"
        )
