"""Cross-kernel fusion: chains of SpMM/SDDMM kernels in one edge sweep.

FeatGraph compiles each message-passing kernel in isolation, so a pattern
like GAT's edge softmax runs as sddmm -> max-SpMM -> expsum-SpMM ->
normalize-SDDMM -> aggregate-SpMM with a full ``(m, heads)`` tensor
materialized between every pair of stages.  This module adds a graph-level
IR *above* single-kernel compilation: a :class:`KernelGraph` of stages whose
producer/consumer edges are placeholder-name references, a fusion planner
that checks the chain is legal to run in **one** edge sweep, and a fused
executor that walks the CSR once per chunk, keeping intermediate per-edge
tensors chunk-local (elided) instead of memory-resident.

What fusion buys, concretely:

- **intermediate edge-buffer elision** -- an sddmm stage consumed only by
  later stages never allocates its ``(m, *feat)`` output; its chunk values
  live in cache and die with the chunk;
- **cross-kernel CSE** -- a stage whose body is (or contains) the same
  expression as an earlier stage reuses that stage's per-edge values
  (``alias`` / ``binop`` compute modes) instead of re-evaluating; the fused
  edge softmax computes ``exp(es - max)`` once, not twice;
- **single sweep** -- one pass over the CSR instead of one per kernel, with
  per-destination segments reduced in place as the sweep passes them.

Legality (checked by :func:`plan_fusion`, violations raise
:class:`FusionError`):

1. the fused sweep is CPU-only (``target="cpu"``);
2. every stage shares one graph -- one iteration space -- by fingerprint;
3. SpMM stage aggregations are restricted to ``sum``/``max``/``min``
   (associative, identity-padded, exactly matching the staged combine);
4. every stage after the first reads at least one chain buffer (otherwise
   it is a disconnected kernel, not part of the chain);
5. a chain *vertex* buffer may only be read through the destination
   (``dst``): reading a vertex reduction through ``src`` would need the
   reduction finished for **all** rows before any consumer edge runs --
   a second edge sweep, which is exactly the boundary fusion must not
   cross;
6. a stage reading a chain *edge* buffer (chunk-local, position-indexed)
   may not also read a real per-edge input (globally ``eid``-indexed):
   the two index spaces cannot be served by one batch.

Fused kernels are cached as topology-independent **fused templates** (their
own namespace and ``fused_*`` counters in :class:`~repro.core.compile.
KernelCache`): a fused chain over a freshly sampled block is a cheap
``fused_bind``, never a recompile.

The whole path sits behind the ``FEATGRAPH_FUSE`` gate (default off);
:func:`use_fusion` flips it per-scope for tests and benchmarks.
"""

from __future__ import annotations

import contextlib
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro import tensorir as T
from repro.core.api import SparseMat, spmat
from repro.core.bindings import BindingError
from repro.core.builtins import copy_u_msg, u_mul_e_msg
from repro.core.compile import (PassTiming, compile_sddmm, compile_spmm,
                                get_kernel_cache)
from repro.core.spmm import resolve_aggregation
from repro.runtime.engine import AggregateSink, Executor, ScatterSink
from repro.runtime.histogram import chunk_bounds, chunk_shapes, degree_stats
from repro.runtime.plan import (EdgeTask, ExecutionPlan, GatherPlan, Stage,
                                effective_chunk_edges)
from repro.runtime.reducers import AGG_IDENTITY, get_reducer
from repro.runtime.strategies import (make_strategy, resolve_request,
                                      resolve_strategy,
                                      select_chunk_strategies)
from repro.tensorir import expr as E
from repro.tensorir import ir as I
from repro.tensorir.analysis import AnalysisError, analyze_ir, strict_enabled
from repro.tensorir.evaluator import evaluate_batched
from repro.tensorir.lower import (inline_computes, replace_tensor_reads,
                                  substitute)
from repro.tensorir.runtime import ExecStats
from repro.tensorir.validate import validate_ir

__all__ = [
    "FUSE_ENV",
    "fuse_enabled",
    "use_fusion",
    "FusionError",
    "KernelGraph",
    "FusionPlan",
    "PlannedStage",
    "plan_fusion",
    "fused_loop_nest",
    "compile_fused",
    "FusedKernel",
    "FusedEdgeSoftmax",
    "FusedCopyUAggregate",
]

#: environment gate for the fused execution paths (softmax.py, minidgl)
FUSE_ENV = "FEATGRAPH_FUSE"

_FUSE_OVERRIDE: list = []  # scoped overrides pushed by use_fusion()

#: default edge-chunk size, matching the staged templates
DEFAULT_CHUNK_EDGES = 1 << 17

#: SpMM aggregations the single-sweep combine supports (rule 3); "mean"
#: combines as "sum" during the sweep with a per-degree divide at finalize
FUSABLE_AGGREGATIONS = ("sum", "max", "min", "mean")


def _agg_base(aggregation: str) -> str:
    """The combine-time base of an aggregation: ``mean`` accumulates as
    ``sum`` (the degree divide happens at finalize, mirroring
    :meth:`repro.core.spmm.GeneralizedSpMM._finalize`)."""
    return "sum" if aggregation == "mean" else aggregation

#: BinOp tokens the ``binop`` CSE mode can execute directly
_BINOP_UFUNC = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.true_divide,
}

#: the fused-pipeline pass ledger (KernelCache.note_timings names)
FUSED_PASSES = ("fuse_stages", "fuse_plan", "fuse_lower", "fuse_validate",
                "fuse_analyze", "fuse_codegen")


def fuse_enabled() -> bool:
    """Whether fused execution paths are on (``FEATGRAPH_FUSE`` gate)."""
    if _FUSE_OVERRIDE:
        return _FUSE_OVERRIDE[-1]
    return os.environ.get(FUSE_ENV, "").lower() in ("1", "true", "on")


@contextlib.contextmanager
def use_fusion(flag: bool = True):
    """Scoped override of the ``FEATGRAPH_FUSE`` gate."""
    _FUSE_OVERRIDE.append(bool(flag))
    try:
        yield
    finally:
        _FUSE_OVERRIDE.pop()


class FusionError(ValueError):
    """A kernel chain that cannot legally run as one fused edge sweep."""


# ----------------------------------------------------------------------
# the graph-level IR
# ----------------------------------------------------------------------

@dataclass
class _StageDef:
    """One node of a :class:`KernelGraph` as declared by the user."""

    name: str
    kind: str            # "spmm" | "sddmm"
    udf: Callable
    aggregation: str | None
    guard_zero: bool
    A: SparseMat | None  # per-stage override; only useful to *fail* rule 2


class KernelGraph:
    """A DAG of kernel stages chained by placeholder-name references.

    A stage's UDF that reads a placeholder named like an **earlier stage**
    consumes that stage's output: an ``spmm`` stage's ``(n_dst, *feat)``
    vertex buffer, or an ``sddmm`` stage's ``(m, *feat)`` per-edge buffer.
    Everything else is a real input supplied in ``run(bindings)``.
    """

    def __init__(self, A, target: str = "cpu", outputs=None):
        self.A = spmat(A)
        self.target = target
        self.outputs: tuple = tuple(outputs) if outputs else ()
        self._stages: list[_StageDef] = []

    def add_stage(self, name: str, kind: str, udf: Callable, *,
                  aggregation: str | None = None, guard_zero: bool = False,
                  A=None) -> str:
        """Append a stage; returns its name (= its output buffer name)."""
        if kind not in ("spmm", "sddmm"):
            raise ValueError(f"stage kind must be spmm/sddmm, got {kind!r}")
        if any(s.name == name for s in self._stages):
            raise ValueError(f"duplicate stage name {name!r}")
        if kind == "spmm":
            aggregation = resolve_aggregation(aggregation or "sum")
        elif aggregation is not None:
            raise ValueError("sddmm stages take no aggregation")
        self._stages.append(_StageDef(name, kind, udf, aggregation,
                                      bool(guard_zero),
                                      spmat(A) if A is not None else None))
        return name

    @property
    def stage_names(self) -> tuple:
        return tuple(s.name for s in self._stages)

    def resolved_outputs(self) -> tuple:
        """Requested outputs, defaulting to the last stage."""
        if self.outputs:
            unknown = set(self.outputs) - set(self.stage_names)
            if unknown:
                raise ValueError(f"unknown output stages {sorted(unknown)}")
            return tuple(self.outputs)
        if not self._stages:
            raise FusionError("fusion needs at least two stages, got zero")
        return (self._stages[-1].name,)

    def template_key(self):
        """Topology-independent identity of the fused chain, or None when a
        stage UDF carries no ``udf_key`` (then the chain is compiled per
        call and never cached)."""
        parts = []
        for s in self._stages:
            udf_key = getattr(s.udf, "udf_key", None)
            if udf_key is None:
                return None
            parts.append((s.name, s.kind, s.aggregation, udf_key,
                          s.guard_zero))
        return ("fused", tuple(parts), self.target, self.resolved_outputs())


# ----------------------------------------------------------------------
# planning: legality + cross-kernel CSE + elision
# ----------------------------------------------------------------------

@dataclass
class PlannedStage:
    """One stage of a legal fused chain, ready to execute."""

    name: str
    kind: str                       # "spmm" | "sddmm"
    aggregation: str | None
    out: E.Tensor                   # traced UDF output (per-edge values)
    axes: tuple                     # out.op.axis
    feat_shape: tuple               # out.shape (feature part only)
    width: int                      # prod(feat_shape)
    prog: object | None             # VectorProgram or None (interpret)
    roles: dict                     # placeholder -> graph-axis role
    reads: tuple                    # placeholder names the body reads
    chain_edge_reads: tuple         # of those: earlier sddmm stage outputs
    chain_vertex_reads: tuple       # of those: earlier spmm stage outputs
    mode: str = "program"           # "program" | "alias" | "binop"
    alias_of: str | None = None     # source stage for alias/binop values
    binop_op: str | None = None     # BinOp token for binop mode
    binop_operand: tuple | None = None  # (tensor, lead_var, source_is_rhs)
    guard_zero: bool = False
    elided: bool = False            # per-edge output never materialized


@dataclass
class FusionPlan:
    """Executable plan for a fused chain (topology-independent)."""

    stages: list
    outputs: tuple
    target: str
    #: elided stage name -> bytes of per-edge buffer saved, per edge
    elided: dict = field(default_factory=dict)
    #: (stage, mode, source-stage) per cross-kernel CSE reuse
    cse: tuple = ()
    #: ScheduleCodeGen-style call wrapper (generated text artifact)
    source: str = ""

    def stage(self, name: str) -> PlannedStage:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(name)

    def bytes_elided(self, m: int) -> int:
        """Total bytes of intermediate edge buffers fusion never allocates
        for an ``m``-edge topology."""
        return int(m) * sum(self.elided.values())


def _collect_placeholders(expr: E.Expr, into: dict) -> None:
    """Placeholder tensors read anywhere in an (inlined) expression."""
    if isinstance(expr, E.TensorElem):
        t = expr.tensor
        if isinstance(t.op, E.PlaceholderOp):
            into.setdefault(t.name, t)
        else:
            _collect_placeholders(t.op.body, into)
        for i in expr.indices:
            _collect_placeholders(i, into)
        return
    for c in expr.children():
        _collect_placeholders(c, into)


def _subexpr_signature(expr: E.Expr, axis_seed: dict) -> str:
    """Canonical signature of a body (sub)expression.

    The same renaming scheme as :func:`repro.core.compile.expr_signature`,
    but seeded so the stage's own output axes are named by *position*:
    two stages tracing the same computation with differently named axes
    compare equal, which is what cross-kernel CSE needs.
    """
    names = dict(axis_seed)

    def ref(name: str) -> str:
        if name not in names:
            names[name] = f"%{len(names)}"
        return names[name]

    def visit(e: E.Expr) -> str:
        if isinstance(e, E.IterVar):
            return ref(e.name)
        if isinstance(e, E.Var):
            return e.name
        if isinstance(e, E.IntImm):
            return f"i{e.value}"
        if isinstance(e, E.FloatImm):
            return f"f{e.value!r}"
        if isinstance(e, E.BinOp):
            return f"({visit(e.a)}{e.op}{visit(e.b)})"
        if isinstance(e, E.Call):
            return f"{e.func}({','.join(visit(a) for a in e.args)})"
        if isinstance(e, E.Select):
            return (f"select({visit(e.cond)},{visit(e.then)},"
                    f"{visit(e.otherwise)})")
        if isinstance(e, E.Cast):
            return f"cast({visit(e.value)},{e.dtype})"
        if isinstance(e, E.Reduce):
            axes = ",".join(f"{ref(a.name)}:{a.extent}" for a in e.axes)
            return f"{e.combiner}[{axes}]({visit(e.source)})"
        if isinstance(e, E.TensorElem):
            t = e.tensor
            head = f"{t.name}:{t.dtype}{tuple(t.shape)}"
            return f"{head}[{','.join(visit(i) for i in e.indices)}]"
        raise TypeError(f"cannot sign {type(e).__name__}")

    return visit(expr)


def _axis_seed(axes) -> dict:
    return {ax.name: f"%a{k}" for k, ax in enumerate(axes)}


def _simple_gather(expr: E.Expr, axes) -> tuple | None:
    """Recognize ``PLACEHOLDER[graphvar, *stage_axes]`` (in order).

    Returns ``(tensor_name, lead_var_name)`` or None.  This is the operand
    shape the ``binop`` CSE mode can serve with one fancy-index gather.
    """
    if not isinstance(expr, E.TensorElem):
        return None
    if not isinstance(expr.tensor.op, E.PlaceholderOp):
        return None
    idx = expr.indices
    if len(idx) != 1 + len(axes):
        return None
    if not isinstance(idx[0], E.Var) or idx[0].name not in ("src", "dst",
                                                            "eid"):
        return None
    for given, ax in zip(idx[1:], axes):
        if not (isinstance(given, E.IterVar) and given.name == ax.name):
            return None
    return (expr.tensor.name, idx[0].name)


def plan_fusion(graph: KernelGraph, cache=None) -> FusionPlan:
    """Check legality, compile the per-stage kernels (through the normal
    template cache), detect cross-kernel CSE, and decide buffer elision.

    Raises :class:`FusionError` on any illegal chain.
    """
    cache = cache if cache is not None else get_kernel_cache()
    defs = graph._stages
    if len(defs) < 2 and not (len(defs) == 1 and defs[0].kind == "spmm"):
        # a lone spmm stage is a legal "chain": message + aggregate in one
        # sweep (the GCN/SAGE copy-u path) still buys the chunked fused
        # executor and its per-chunk adaptive strategies
        raise FusionError(
            f"fusion needs at least two stages, got {len(defs)}")
    if graph.target != "cpu":
        raise FusionError(
            f"fused single-sweep execution is cpu-only, got target="
            f"{graph.target!r}")
    fp = graph.A.csr.fingerprint()
    for s in defs:
        if s.A is not None and s.A.csr.fingerprint() != fp:
            raise FusionError(
                f"stage {s.name!r} iterates a different graph: all fused "
                "stages must share one edge/vertex iteration space")
        if s.kind == "spmm" and s.aggregation not in FUSABLE_AGGREGATIONS:
            raise FusionError(
                f"stage {s.name!r}: aggregation {s.aggregation!r} cannot be "
                f"combined in a single sweep (supported: "
                f"{'/'.join(FUSABLE_AGGREGATIONS)})")
    outputs = graph.resolved_outputs()

    # compile each stage through the single-kernel pipeline: template-cache
    # hits make this a cheap rebind, and it hands us traced bodies, roles,
    # and vectorized per-edge programs
    kernels = []
    for s in defs:
        if s.kind == "spmm":
            k = compile_spmm(graph.A, s.udf, s.aggregation,
                             target=graph.target, cache=cache)
            out = k.msg
        else:
            k = compile_sddmm(graph.A, s.udf, target=graph.target,
                              hilbert=False, cache=cache)
            out = k.edge_out
        kernels.append((k, out))

    stages: list[PlannedStage] = []
    body_sigs: dict[str, str] = {}
    cse: list[tuple] = []
    kind_of = {s.name: s.kind for s in defs}
    agg_of = {s.name: s.aggregation for s in defs}
    for s, (kernel, out) in zip(defs, kernels):
        roles = kernel.roles
        try:
            inlined = inline_computes(out.op.body)
        except NotImplementedError as exc:
            raise FusionError(
                f"stage {s.name!r}: {exc}") from None
        placeholders: dict = {}
        _collect_placeholders(inlined, placeholders)
        reads = tuple(placeholders)
        earlier = {st.name for st in stages}
        chain_edge = tuple(n for n in reads
                           if n in earlier and kind_of[n] == "sddmm")
        chain_vertex = tuple(n for n in reads
                             if n in earlier and kind_of[n] == "spmm")
        if stages and not (chain_edge or chain_vertex):
            raise FusionError(
                f"stage {s.name!r} reads no earlier stage's output: a "
                "disconnected kernel cannot join the fused sweep")
        for n in chain_vertex:
            if roles.get(n) != "n_dst":
                raise FusionError(
                    f"stage {s.name!r} reads vertex buffer {n!r} through "
                    f"{roles.get(n)!r}: a vertex reduction consumed other "
                    "than via dst crosses the reduction boundary and needs "
                    "a second edge sweep")
            if agg_of.get(n) == "mean":
                raise FusionError(
                    f"stage {s.name!r} reads mean-aggregated buffer {n!r}: "
                    "the degree divide happens at finalize, after the "
                    "sweep, so in-sweep consumers would read raw sums")
        for n in chain_edge:
            if roles.get(n) != "m":
                raise FusionError(
                    f"stage {s.name!r} reads edge buffer {n!r} through "
                    f"{roles.get(n)!r}; chain edge buffers are per-edge")
        if chain_edge:
            for n in reads:
                if n not in earlier and roles.get(n) == "m":
                    raise FusionError(
                        f"stage {s.name!r} mixes chunk-local chain edge "
                        f"buffer(s) {list(chain_edge)} with the real "
                        f"per-edge input {n!r}: one batch cannot serve "
                        "both index spaces")

        st = PlannedStage(
            name=s.name, kind=s.kind, aggregation=s.aggregation, out=out,
            axes=tuple(out.op.axis), feat_shape=tuple(out.shape),
            width=int(np.prod(out.shape, dtype=np.int64)) if out.shape else 1,
            prog=kernel.vector_program(), roles=dict(roles), reads=reads,
            chain_edge_reads=chain_edge, chain_vertex_reads=chain_vertex,
            guard_zero=s.guard_zero)

        # -- cross-kernel CSE -------------------------------------------
        seed = _axis_seed(st.axes)
        sig = _subexpr_signature(inlined, seed)
        match = next((p for p in stages
                      if body_sigs[p.name] == sig
                      and p.feat_shape == st.feat_shape), None)
        if match is not None:
            st.mode, st.alias_of = "alias", match.name
            cse.append((st.name, "alias", match.name))
        elif isinstance(inlined, E.BinOp) and inlined.op in _BINOP_UFUNC:
            for source_expr, operand, src_is_rhs in (
                    (inlined.a, inlined.b, False),
                    (inlined.b, inlined.a, True)):
                gather = _simple_gather(operand, st.axes)
                if gather is None:
                    continue
                src_sig = _subexpr_signature(source_expr, _axis_seed(st.axes))
                match = next((p for p in stages
                              if body_sigs[p.name] == src_sig
                              and p.feat_shape == st.feat_shape), None)
                if match is not None:
                    st.mode, st.alias_of = "binop", match.name
                    st.binop_op = inlined.op
                    st.binop_operand = (*gather, src_is_rhs)
                    cse.append((st.name, "binop", match.name))
                    break
        body_sigs[st.name] = sig
        stages.append(st)

    # -- intermediate edge-buffer elision -------------------------------
    elided: dict[str, int] = {}
    for st in stages:
        if st.kind == "sddmm" and st.name not in outputs:
            st.elided = True
            elided[st.name] = st.width * 4  # float32 bytes per edge
    plan = FusionPlan(stages=stages, outputs=outputs, target=graph.target,
                      elided=elided, cse=tuple(cse))
    plan.source = _codegen_call(plan)
    return plan


# ----------------------------------------------------------------------
# fused loop nest (lowered-IR artifact for validate/analyze/tests)
# ----------------------------------------------------------------------

def _inlined_bodies(plan: FusionPlan) -> dict:
    """Per-stage bodies with every *elided* chain-edge producer spliced in.

    A consumer's read ``P[eid, i...]`` of an elided producer ``P`` becomes
    the producer's body with its axes substituted by the consumer's feature
    indices -- the buffer never exists, not even in the IR.
    """
    bodies: dict[str, E.Expr] = {}
    by_name = {st.name: st for st in plan.stages}
    for st in plan.stages:
        body = inline_computes(st.out.op.body)
        for prod_name in st.chain_edge_reads:
            prod = by_name[prod_name]
            if not prod.elided:
                continue
            pb, paxes = bodies[prod_name], prod.axes

            def splice(idx, pb=pb, paxes=paxes):
                # idx[0] is the per-edge position: the producer's value for
                # this very edge of the shared sweep, so only feature
                # indices substitute
                return substitute(pb, {ax.name: ix
                                       for ax, ix in zip(paxes, idx[1:])})

            body = replace_tensor_reads(body, prod_name, splice)
        bodies[st.name] = body
    return bodies


def fused_loop_nest(plan: FusionPlan, A) -> I.Stmt:
    """Build the fused single-sweep loop nest.

    One serial destination loop; under it, per surviving stage, an
    ``edge_range``-annotated edge loop with the stage's feature loops and a
    combiner store (spmm) or an edge-indexed store (sddmm).  Elided stages
    emit **no** loops and no stores -- their bodies are inlined into their
    consumers.  The nest allocates nothing (no ``Allocate``/cache reads),
    which is what keeps the analyzer report empty.
    """
    A = spmat(A)
    n_dst = A.num_dst
    nnz = max(A.nnz, 1)
    indices_t = E.placeholder((nnz,), name="A_indices", dtype="int64")
    eids_t = E.placeholder((nnz,), name="A_edge_ids", dtype="int64")
    v_iv = E.IterVar((0, n_dst), name="v")
    bodies = _inlined_bodies(plan)

    stage_stmts = []
    for k, st in enumerate(plan.stages):
        if st.elided:
            continue
        e_iv = E.IterVar((0, nnz), name=f"e{k}")
        mapping = {"src": E.TensorElem(indices_t, (e_iv,)),
                   "dst": v_iv,
                   "eid": E.TensorElem(eids_t, (e_iv,))}
        value = substitute(bodies[st.name], mapping)
        if st.kind == "spmm":
            buf = I.BufferRef(st.name, (n_dst,) + st.feat_shape, "float32")
            store = I.Store(buf, value, [v_iv] + list(st.axes),
                            combiner=_agg_base(st.aggregation))
        else:
            buf = I.BufferRef(st.name, (nnz,) + st.feat_shape, "float32")
            store = I.Store(buf, value,
                            [E.TensorElem(eids_t, (e_iv,))] + list(st.axes))
        body: I.Stmt = store
        for ax in reversed(st.axes):
            body = I.For(ax, ax.extent, body)
        stage_stmts.append(
            I.AttrStmt("edge_range", "A.indptr[v] : A.indptr[v+1]",
                       I.For(e_iv, nnz, body)))
    nest = (stage_stmts[0] if len(stage_stmts) == 1
            else I.SeqStmt(stage_stmts))
    return I.For(v_iv, n_dst, nest, kind=I.For.SERIAL)


# ----------------------------------------------------------------------
# call-wrapper codegen (the ScheduleCodeGen-style text artifact)
# ----------------------------------------------------------------------

def _codegen_call(plan: FusionPlan) -> str:
    """Generate the outer "call" wrapper as readable source text.

    The wrapper is the human-auditable contract of the fused program: which
    outputs get allocated (only survivors), which buffers are elided, and
    in what order the stages run inside the single chunked edge sweep.
    The executor (:meth:`FusedKernel.run`) is the interpreter of the same
    plan; tests diff this text for the elision/CSE accounting.
    """
    lines = [
        "def fused_call(A, bindings, keep=()):",
        f"    # fused chain [{plan.target}]: "
        + " -> ".join(st.name for st in plan.stages),
    ]
    for st in plan.stages:
        feat = "".join(f", {d}" for d in st.feat_shape)
        if st.kind == "spmm":
            guard = ", zero-guard" if st.guard_zero else ""
            lines.append(
                f"    {st.name} = full((n_dst{feat}), "
                f"{AGG_IDENTITY[_agg_base(st.aggregation)]!r})"
                f"  # vertex accumulator ({st.aggregation}{guard})")
        elif not st.elided:
            lines.append(f"    {st.name} = empty((m{feat}))"
                         f"  # surviving edge output")
    for name, nbytes in plan.elided.items():
        lines.append(f"    # elided: {name} ({nbytes} B/edge) -- "
                     "chunk-local, never materialized")
    lines.append("    for c0, c1 in row_aligned_chunks(A.indptr, "
                 "chunk_edges):")
    lines.append("        chunk = edges[c0:c1]; segs = run_starts(chunk.dst)")
    for st in plan.stages:
        v = st.name.lower()
        if st.mode == "alias":
            rhs = f"vals[{st.alias_of}]  # CSE: alias"
        elif st.mode == "binop":
            tname, lead, src_is_rhs = st.binop_operand
            a = f"vals[{st.alias_of}]"
            b = f"{tname}[chunk.{lead}]"
            expr = f"{b} {st.binop_op} {a}" if src_is_rhs else \
                f"{a} {st.binop_op} {b}"
            rhs = f"{expr}  # CSE: binop reuse of {st.alias_of}"
        else:
            batch = "local_eid" if st.chain_edge_reads else "chunk"
            rhs = f"eval[{st.name}](bindings, {batch})"
        lines.append(f"        vals[{st.name}] = {rhs}")
        if st.kind == "spmm":
            lines.append(
                f"        {st.name}[segs.rows] "
                f"{{{st.aggregation}}}= reduceat(vals[{st.name}], segs)")
            if st.guard_zero:
                lines.append(
                    f"        {st.name}[segs.rows] = where(== 0, 1.0, .)")
        elif not st.elided:
            lines.append(
                f"        {st.name}[chunk.eid] = vals[{st.name}]")
    lines.append("    finalize(deg == 0 rows)")
    rets = ", ".join(plan.outputs)
    lines.append(f"    return {{{rets}}} | keep")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the fused executor
# ----------------------------------------------------------------------

class FusedKernel:
    """A fused chain bound to one graph topology.

    ``run(bindings, keep=())`` executes the plan in one row-aligned chunked
    sweep and returns ``{name: array}`` for the plan outputs plus any
    ``keep``-requested stage (materializing an otherwise elided buffer).
    """

    def __init__(self, A, plan: FusionPlan,
                 chunk_edges: int = DEFAULT_CHUNK_EDGES,
                 bound: bool = False):
        self.A = spmat(A)
        self.plan = plan
        self.chunk_edges = int(chunk_edges)
        self.bound = bound
        #: aggregation-strategy override (None = auto/env), as on the
        #: staged templates
        self.agg_strategy: str | None = None
        self.exec_stats = ExecStats()
        self.timings: list[PassTiming] = []
        self._lowered: I.Stmt | None = None
        self._analysis = None
        self._plan_verify = None

    # -- artifacts ------------------------------------------------------
    @property
    def call_source(self) -> str:
        return self.plan.source

    def lowered_ir(self) -> I.Stmt:
        if self._lowered is None:
            self._lowered = fused_loop_nest(self.plan, self.A)
        return self._lowered

    def analysis_report(self):
        if self._analysis is None:
            self._analysis = analyze_ir(self.lowered_ir(),
                                        target=self.plan.target)
        return self._analysis

    def verify_report(self):
        """The plan verifier's report (FG006-FG010) for the fused chain's
        execution plan; set by ``compile_fused``'s ``fuse_verify`` step,
        computed on demand for bound chains."""
        if getattr(self, "_plan_verify", None) is None:
            from repro.runtime.verify import verify_kernel

            self._plan_verify = verify_kernel(self)
        return self._plan_verify

    def compile_timings(self) -> dict:
        return {t.name: t.seconds for t in self.timings}

    # -- binding validation ---------------------------------------------
    def _graph_dims(self) -> dict:
        return {"n_src": self.A.num_src, "n_dst": self.A.num_dst,
                "m": self.A.nnz,
                "n_max": max(self.A.num_src, self.A.num_dst)}

    def _validate(self, bindings: Mapping[str, np.ndarray]) -> None:
        dims = self._graph_dims()
        chain = set()
        for st in self.plan.stages:
            chain.add(st.name)
            shapes = {t.name: tuple(t.shape)
                      for t in self._stage_placeholders(st)}
            for pname in st.reads:
                if pname in chain:
                    continue
                if pname not in bindings:
                    raise BindingError(
                        f"fused[{st.name}]: missing binding {pname!r}")
                arr = np.asarray(bindings[pname])
                if not np.issubdtype(arr.dtype, np.floating):
                    raise BindingError(
                        f"fused[{st.name}]: binding {pname!r} must be "
                        f"float, got {arr.dtype}")
                shape = shapes[pname]
                role = st.roles.get(pname)
                if role is None:
                    if tuple(arr.shape) != tuple(shape):
                        raise BindingError(
                            f"fused[{st.name}]: binding {pname!r} expects "
                            f"shape {tuple(shape)}, got {tuple(arr.shape)}")
                else:
                    if tuple(arr.shape[1:]) != tuple(shape[1:]):
                        raise BindingError(
                            f"fused[{st.name}]: binding {pname!r} expects "
                            f"trailing dims {tuple(shape[1:])}, got "
                            f"{tuple(arr.shape[1:])}")
                    if arr.shape[0] < dims[role]:
                        raise BindingError(
                            f"fused[{st.name}]: binding {pname!r} needs "
                            f"leading dim >= {dims[role]} ({role}), got "
                            f"{arr.shape[0]}")

    @staticmethod
    def _stage_placeholders(st: PlannedStage):
        placeholders: dict = {}
        _collect_placeholders(inline_computes(st.out.op.body), placeholders)
        return placeholders.values()

    # -- execution ------------------------------------------------------
    def run(self, bindings: Mapping[str, np.ndarray], keep=(),
            pool=None) -> dict:
        keep = tuple(keep)
        unknown = set(keep) - {st.name for st in self.plan.stages}
        if unknown:
            raise ValueError(f"keep names unknown stages {sorted(unknown)}")
        self._validate(bindings)
        csr = self.A.csr
        n_dst, m = self.A.num_dst, self.A.nnz
        want = set(self.plan.outputs) | set(keep)

        vbufs: dict[str, np.ndarray] = {}
        ebufs: dict[str, np.ndarray] = {}
        for st in self.plan.stages:
            if st.kind == "spmm":
                vbufs[st.name] = np.full(
                    (n_dst,) + st.feat_shape,
                    AGG_IDENTITY[_agg_base(st.aggregation)],
                    dtype=np.float32)
            elif (not st.elided) or st.name in keep:
                ebufs[st.name] = np.empty((m,) + st.feat_shape,
                                          dtype=np.float32)

        plan = self.execution_plan(vbufs, ebufs, keep, pool=pool)
        Executor(stats=self.exec_stats, pool=pool).run(plan, bindings)

        result = {}
        for name in want:
            result[name] = vbufs[name] if name in vbufs else ebufs[name]
        return result

    def execution_plan(self, vbufs: dict, ebufs: dict, keep=(),
                       pool=None) -> ExecutionPlan:
        """Lower the fused chain to a single multi-stage
        :class:`~repro.runtime.plan.EdgeTask`: one row-aligned chunked
        sweep whose per-chunk segment boundaries are computed once and
        shared by every aggregating stage, with chain-edge values flowing
        between stages through the chunk context.

        The aggregation request resolves exactly as on the staged SpMM
        template: a concrete name pins one strategy for the sweep,
        ``"adaptive"`` assigns per chunk from the chunk's shape statistics
        (the adaptive executor applies **inside** fused plans), a name
        sequence pins an explicit per-chunk cycle."""
        csr = self.A.csr
        target = self.chunk_edges
        for st in self.plan.stages:
            if st.prog is not None:
                target = min(target,
                             effective_chunk_edges(self.chunk_edges,
                                                   st.prog))
        spmm_width = max((st.width for st in self.plan.stages
                          if st.kind == "spmm"), default=1)
        bounds = chunk_bounds(csr, target)
        mode, names = resolve_request(self.agg_strategy)
        if mode in ("auto", "single"):
            strategy = resolve_strategy(
                names[0] if mode == "single" else None,
                degree_stats(csr).degrees, spmm_width, pool)
            plan_label = strategy.name
            chunk_strats = None
        else:
            strategy = make_strategy("reduceat", pool=pool)
            plan_label = "adaptive" if mode == "adaptive" else "mixed"
            if mode == "adaptive":
                assigned = select_chunk_strategies(
                    chunk_shapes(csr, target, spmm_width), pool)
            else:
                assigned = [names[i % len(names)]
                            for i in range(len(bounds))]
            instances = {"reduceat": strategy}
            chunk_strats = [
                instances.setdefault(n, make_strategy(n, pool=pool))
                for n in assigned]
        keep = set(keep)

        stages = []
        for st in self.plan.stages:
            if st.mode == "alias":
                def evaluate(bindings, ctx, source=st.alias_of):
                    return ctx.values[source], 0
            elif st.mode == "binop":
                def evaluate(bindings, ctx, st=st):
                    tname, lead, src_is_rhs = st.binop_operand
                    arr = vbufs.get(tname)
                    if arr is None:
                        arr = bindings[tname]
                    gathered = arr[ctx.batch[lead]]
                    ufunc = _BINOP_UFUNC[st.binop_op]
                    source_vals = ctx.values[st.alias_of]
                    vals = (ufunc(gathered, source_vals) if src_is_rhs
                            else ufunc(source_vals, gathered))
                    return vals, gathered.nbytes
            else:
                def evaluate(bindings, ctx, st=st):
                    sb = {}
                    for pname in st.reads:
                        if pname in st.chain_edge_reads:
                            sb[pname] = ctx.values[pname]
                        elif pname in st.chain_vertex_reads:
                            sb[pname] = vbufs[pname]
                        else:
                            sb[pname] = bindings[pname]
                    if st.chain_edge_reads:
                        # chain-edge values are chunk-local: evaluate in
                        # position space, not global edge-id space
                        batch = {"src": ctx.batch["src"],
                                 "dst": ctx.batch["dst"],
                                 "eid": ctx.local_eid}
                    else:
                        batch = ctx.batch
                    if st.prog is not None:
                        vals = st.prog.run(sb, batch)
                        b = st.prog.bytes_moved(
                            ctx.size, exclude=set(st.chain_edge_reads))
                        if st.elided and st.name not in keep:
                            b -= vals.nbytes  # output stays chunk-local
                        return vals, max(int(b), 0)
                    return evaluate_batched(st.out, sb, batch), 0

            if st.kind == "spmm":
                sink = AggregateSink(vbufs[st.name],
                                     get_reducer(_agg_base(st.aggregation)),
                                     strategy, guard_zero=st.guard_zero)
            else:
                buf = ebufs.get(st.name)
                sink = None if buf is None else ScatterSink(
                    buf, count_bytes=st.mode != "program")
            stages.append(Stage(
                st.name, evaluate, sink,
                compiled=st.prog is not None or st.mode != "program"))

        task = EdgeTask(
            gather=GatherPlan(csr.indices, csr.row_of_edge(), csr.edge_ids),
            bounds=bounds,
            stages=stages,
            chunk_strategies=chunk_strats)
        chain = "->".join(st.name for st in self.plan.stages)
        # Chain-read metadata for the plan verifier's FG008 def-before-use
        # check: which earlier-stage values each stage consumes through the
        # chunk context (chain-edge values) or through a vertex buffer an
        # earlier aggregating stage of the same sweep filled.
        chain_reads: dict[str, list] = {}
        programs: dict[str, object] = {}
        for st in self.plan.stages:
            if st.mode in ("alias", "binop"):
                reads = [st.alias_of]
                if st.mode == "binop" and st.binop_operand[0] in vbufs:
                    reads.append(st.binop_operand[0])
            else:
                reads = list(st.chain_edge_reads) + \
                    list(st.chain_vertex_reads)
                programs[st.name] = st.prog
            chain_reads[st.name] = reads
        return ExecutionPlan(
            [task], label=f"fused[{chain}]", strategy=plan_label,
            finalize=lambda: self._finalize(vbufs),
            extras={"verify": {"dims": self._graph_dims(),
                               "chain_reads": chain_reads,
                               "programs": programs,
                               "target": f"fused[{chain}]"}})

    def _finalize(self, vbufs: dict) -> None:
        """Post-sweep fixups, exactly as the staged pipeline applies them
        (mirroring ``GeneralizedSpMM._finalize``): rows with no incoming
        edges have max/min identities become 0.0 and zero-guarded sums
        become 1.0; mean accumulators divide by ``max(degree, 1)``."""
        deg = np.diff(self.A.csr.indptr)
        untouched = deg == 0
        any_untouched = bool(untouched.any())
        for st in self.plan.stages:
            if st.kind != "spmm":
                continue
            if any_untouched:
                if st.aggregation in ("max", "min"):
                    vbufs[st.name][untouched] = 0.0
                if st.guard_zero:
                    vbufs[st.name][untouched] = 1.0
            if st.aggregation == "mean":
                buf = vbufs[st.name]
                d = np.maximum(deg, 1).astype(np.float32)
                buf /= d.reshape((-1,) + (1,) * (buf.ndim - 1))

    def __repr__(self):
        chain = " -> ".join(st.name for st in self.plan.stages)
        return (f"FusedKernel({chain}, m={self.A.nnz}, "
                f"{'bound' if self.bound else 'compiled'})")


# ----------------------------------------------------------------------
# fused compilation (template cache integration)
# ----------------------------------------------------------------------

def _verify_fused(kernel: FusedKernel):
    """Run the plan verifier over a freshly compiled chain and cache the
    report on the kernel (what ``verify_report()`` serves)."""
    from repro.runtime.verify import verify_kernel

    kernel._plan_verify = verify_kernel(kernel)
    return kernel._plan_verify


@dataclass
class FusedTemplate:
    """Topology-independent fused-chain artifact living in the cache's
    fused namespace: rebinding to a fresh topology is plan reuse."""

    key: tuple
    plan: FusionPlan


def compile_fused(graph: KernelGraph, *, cache=None,
                  chunk_edges: int = DEFAULT_CHUNK_EDGES) -> FusedKernel:
    """Compile (or cheaply rebind) a :class:`KernelGraph` into a
    :class:`FusedKernel`.

    Resolution order mirrors the single-kernel pipeline: fused-template
    prekey hit -> ``fused_bind`` (zero compile passes); otherwise the fused
    pass ledger runs (``fuse_stages`` .. ``fuse_codegen``) and the result
    is stored as a fused template when every stage UDF carries a
    ``udf_key``.
    """
    cache = cache if cache is not None else get_kernel_cache()
    prekey = graph.template_key()
    if prekey is not None:
        entry = cache.get_fused_template(prekey)
        if entry is not None:
            t0 = time.perf_counter()
            kernel = FusedKernel(graph.A, entry.plan,
                                 chunk_edges=chunk_edges, bound=True)
            kernel.timings = [PassTiming("fused_bind",
                                         time.perf_counter() - t0)]
            cache.note_timings(kernel.timings)
            cache.note_fused(bound=True)
            return kernel

    timings: list[PassTiming] = []

    def timed(name, fn):
        t0 = time.perf_counter()
        out = fn()
        timings.append(PassTiming(name, time.perf_counter() - t0))
        return out

    plan = timed("fuse_stages", lambda: plan_fusion(graph, cache))
    # fuse_plan is the legality/CSE/elision decision record; planning runs
    # inside plan_fusion, so the entry carries its bookkeeping cost (~0)
    timings.append(PassTiming("fuse_plan", 0.0))
    stmt = timed("fuse_lower", lambda: fused_loop_nest(plan, graph.A))
    timed("fuse_validate", lambda: validate_ir(stmt))
    report = timed("fuse_analyze",
                   lambda: analyze_ir(stmt, target=graph.target))
    if strict_enabled() and report.has_errors:
        raise AnalysisError(report)
    timed("fuse_codegen", lambda: plan.source)

    kernel = FusedKernel(graph.A, plan, chunk_edges=chunk_edges, bound=False)
    kernel.timings = timings
    kernel._lowered = stmt
    kernel._analysis = report
    # plan-layer verification (FG006-FG010): the loop-nest analyzer above
    # never sees the chunked/sharded execution plan the chain actually runs
    plan_report = timed("fuse_verify", lambda: _verify_fused(kernel))
    if strict_enabled() and plan_report.has_errors:
        raise AnalysisError(plan_report)
    cache.note_timings(timings)
    cache.note_fused(bound=False)
    if prekey is not None:
        cache.put_fused_template(prekey, FusedTemplate(prekey, plan))
    return kernel


# ----------------------------------------------------------------------
# the flagship chain: fused edge softmax (+ optional aggregation)
# ----------------------------------------------------------------------

class FusedEdgeSoftmax:
    """sddmm+softmax+spmm in one pass: the chain of
    :class:`~repro.core.softmax.EdgeSoftmax` (max / exp-sum / normalize),
    optionally extended with the GAT aggregation stage
    (``sum_v alpha_uv * z_u``) when ``feat_shape`` is given.

    Stage UDFs reuse the staged phases' ``udf_key`` identities, so the
    per-stage compiles share templates with the staged pipeline; the chain
    itself is cached as one fused template and rebinds across sampled
    blocks with zero recompiles.
    """

    def __init__(self, A, num_heads: int = 1, target: str = "cpu",
                 cache=None, feat_shape: tuple | None = None,
                 chunk_edges: int = DEFAULT_CHUNK_EDGES):
        if num_heads < 1:
            raise ValueError("num_heads must be >= 1")
        self.A = spmat(A)
        self.num_heads = int(num_heads)
        self.target = target
        self.feat_shape = tuple(feat_shape) if feat_shape is not None \
            else None
        m, n, h = self.A.nnz, self.A.num_dst, self.num_heads

        ES = T.placeholder((m, h), name="ES")
        MAXV = T.placeholder((n, h), name="MAXV")
        SUMV = T.placeholder((n, h), name="SUMV")

        def max_msg(src, dst, eid):
            return T.compute((h,), lambda i: ES[eid, i], name="sm_max")

        def expsum_msg(src, dst, eid):
            return T.compute((h,), lambda i: T.exp(ES[eid, i] - MAXV[dst, i]),
                             name="sm_expsum")

        def normalize_edge(src, dst, eid):
            return T.compute(
                (h,),
                lambda i: T.exp(ES[eid, i] - MAXV[dst, i]) / SUMV[dst, i],
                name="sm_norm")

        max_msg.udf_key = ("edge_softmax_max", h)
        expsum_msg.udf_key = ("edge_softmax_expsum", h)
        normalize_edge.udf_key = ("edge_softmax_normalize", h)

        g = KernelGraph(self.A, target=target)
        g.add_stage("MAXV", "spmm", max_msg, aggregation="max")
        g.add_stage("SUMV", "spmm", expsum_msg, aggregation="sum",
                    guard_zero=True)
        g.add_stage("ALPHA", "sddmm", normalize_edge)
        if self.feat_shape is not None:
            XV = T.placeholder((self.A.num_src,) + self.feat_shape,
                               name="XV")
            ALPHA = T.placeholder((m, h), name="ALPHA")
            g.add_stage("OUT", "spmm", u_mul_e_msg(XV, ALPHA),
                        aggregation="sum")
            g.outputs = ("OUT",)
        else:
            g.outputs = ("ALPHA",)
        self.graph = g
        self.kernel = compile_fused(g, cache=cache,
                                    chunk_edges=chunk_edges)

    def _scores(self, scores: np.ndarray) -> tuple[np.ndarray, bool]:
        squeeze = scores.ndim == 1
        es = scores.reshape(self.A.nnz, self.num_heads).astype(np.float32)
        return es, squeeze

    def run(self, scores: np.ndarray, pool=None) -> np.ndarray:
        """Normalized attention, one fused sweep (``feat_shape=None``)."""
        if self.feat_shape is not None:
            raise ValueError("this chain aggregates; use run_aggregate()")
        es, squeeze = self._scores(scores)
        alpha = self.kernel.run({"ES": es}, pool=pool)["ALPHA"]
        return alpha[:, 0] if squeeze else alpha

    def run_aggregate(self, scores: np.ndarray, z: np.ndarray,
                      need_alpha: bool = False, pool=None):
        """``(out, alpha_or_None)``: softmax + weighted aggregation in one
        sweep.  ``alpha`` is only materialized on request -- in inference
        the ``(m, heads)`` buffer is fully elided."""
        if self.feat_shape is None:
            raise ValueError("construct with feat_shape to aggregate")
        es, _ = self._scores(scores)
        z = np.ascontiguousarray(z, dtype=np.float32)
        keep = ("ALPHA",) if need_alpha else ()
        res = self.kernel.run({"ES": es, "XV": z}, keep=keep, pool=pool)
        return res["OUT"], res.get("ALPHA")

    def exec_stats(self) -> dict:
        return {"fused": self.kernel.exec_stats.as_dict()}

    def __repr__(self):
        return (f"FusedEdgeSoftmax(m={self.A.nnz}, heads={self.num_heads}, "
                f"feat={self.feat_shape}, target={self.target})")


# ----------------------------------------------------------------------
# the GCN/SAGE chain: copy-u message + sum/mean aggregation in one sweep
# ----------------------------------------------------------------------

class FusedCopyUAggregate:
    """``copy_u`` -> sum/mean aggregation as a fused single-sweep plan.

    The message+aggregate core of GCN and GraphSAGE: gather the source
    feature row per edge and segment-reduce into destinations.  Staged
    execution runs it through ``GeneralizedSpMM`` with a separate degree
    normalization afterwards; this chain runs the same computation through
    the fused executor, so the adaptive per-chunk strategies apply and the
    mean divide folds into the plan's finalize.  The single stage reuses
    :func:`~repro.core.builtins.copy_u_msg`'s ``udf_key``, so the chain
    caches as a fused template and rebinds across sampled blocks.
    """

    def __init__(self, A, feat_shape, aggregation: str = "sum",
                 target: str = "cpu", cache=None,
                 chunk_edges: int = DEFAULT_CHUNK_EDGES):
        self.A = spmat(A)
        self.feat_shape = tuple(int(d) for d in feat_shape)
        if not self.feat_shape:
            raise ValueError("feat_shape must have at least one dim")
        self.aggregation = resolve_aggregation(aggregation)
        if self.aggregation not in FUSABLE_AGGREGATIONS:
            raise FusionError(
                f"copy-u chain cannot fuse aggregation "
                f"{self.aggregation!r}")
        self.target = target
        XV = T.placeholder((self.A.num_src,) + self.feat_shape, name="XV")
        g = KernelGraph(self.A, target=target, outputs=("COUT",))
        g.add_stage("COUT", "spmm", copy_u_msg(XV),
                    aggregation=self.aggregation)
        self.graph = g
        self.kernel = compile_fused(g, cache=cache, chunk_edges=chunk_edges)

    def run(self, x: np.ndarray, pool=None) -> np.ndarray:
        """Aggregated ``(n_dst, *feat_shape)`` output for features ``x``."""
        x = np.ascontiguousarray(x, dtype=np.float32)
        return self.kernel.run({"XV": x}, pool=pool)["COUT"]

    def exec_stats(self) -> dict:
        return {"fused": self.kernel.exec_stats.as_dict()}

    def __repr__(self):
        return (f"FusedCopyUAggregate(m={self.A.nnz}, "
                f"feat={self.feat_shape}, agg={self.aggregation}, "
                f"target={self.target})")
