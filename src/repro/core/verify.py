"""Kernel self-verification against a brute-force reference.

The generic interpreter that powers the templates also yields a slow,
obviously-correct executor: evaluate the UDF for every edge and combine with
a plain scatter loop.  :func:`verify_spmm` / :func:`verify_sddmm` run a
kernel and that reference side by side -- the "sanity check" a user reaches
for after writing a new UDF or FDS (and what the paper's accuracy section
does at model level).

:func:`reference_spmm` / :func:`reference_sddmm` expose the brute-force
executors directly; the differential fuzzing harness
(:mod:`repro.testing.differential`) uses them as its oracle.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.sddmm import GeneralizedSDDMM
from repro.core.spmm import GeneralizedSpMM, _AGG_IDENTITY, _AGG_UFUNC
from repro.tensorir.evaluator import evaluate_batched

__all__ = [
    "verify_spmm",
    "verify_sddmm",
    "reference_spmm",
    "reference_sddmm",
    "VerificationError",
]


class VerificationError(AssertionError):
    """Kernel output disagrees with the brute-force reference.

    Carries ``max_abs_diff`` and ``atol`` so harnesses can report and rank
    mismatches without parsing the message.
    """

    def __init__(self, message: str, max_abs_diff: float | None = None,
                 atol: float | None = None):
        super().__init__(message)
        self.max_abs_diff = max_abs_diff
        self.atol = atol


def reference_spmm(kernel: GeneralizedSpMM, bindings) -> np.ndarray:
    """Brute-force SpMM: evaluate the UDF on every edge, scatter-combine."""
    csr = kernel.A.csr
    n_dst = kernel.A.num_dst
    base = kernel.aggregation if kernel.aggregation != "mean" else "sum"
    out = np.full((n_dst,) + kernel.msg_shape, _AGG_IDENTITY[base],
                  dtype=np.float32)
    rows = csr.row_of_edge()
    msgs = evaluate_batched(kernel.msg, bindings, {
        "src": csr.indices, "dst": rows, "eid": csr.edge_ids,
    })
    _AGG_UFUNC[base].at(out, rows, msgs)
    deg = np.diff(csr.indptr)
    out[deg == 0] = 0.0
    if kernel.aggregation == "mean":
        out /= np.maximum(deg, 1).reshape((-1,) + (1,) * (out.ndim - 1))
    return out


# Backwards-compatible alias (pre-public name).
_reference_spmm = reference_spmm


def reference_sddmm(kernel: GeneralizedSDDMM, bindings) -> np.ndarray:
    """Brute-force SDDMM: evaluate the edge UDF for every edge, indexed by
    original edge id."""
    csr = kernel.A.csr
    vals = evaluate_batched(kernel.edge_out, bindings, {
        "src": csr.indices, "dst": csr.row_of_edge(), "eid": csr.edge_ids,
    })
    ref = np.empty((kernel.A.nnz,) + kernel.out_shape, dtype=np.float32)
    ref[csr.edge_ids] = vals
    return ref


def verify_spmm(kernel: GeneralizedSpMM, bindings: Mapping[str, np.ndarray],
                atol: float = 1e-4) -> np.ndarray:
    """Run the kernel and the brute-force reference; raise on mismatch.

    Returns the kernel output on success.
    """
    got = kernel.run(bindings)
    ref = reference_spmm(kernel, bindings)
    if not np.allclose(got, ref, atol=atol, equal_nan=True):
        worst = float(np.nanmax(np.abs(got - ref)))
        raise VerificationError(
            f"generalized SpMM disagrees with the reference "
            f"(max abs diff {worst:.3g}, atol {atol:g}); check the FDS and "
            "partitioning configuration", max_abs_diff=worst, atol=atol)
    return got


def verify_sddmm(kernel: GeneralizedSDDMM, bindings: Mapping[str, np.ndarray],
                 atol: float = 1e-4) -> np.ndarray:
    """Run the kernel and the brute-force edge map; raise on mismatch."""
    got = kernel.run(bindings)
    ref = reference_sddmm(kernel, bindings)
    if not np.allclose(got, ref, atol=atol, equal_nan=True):
        worst = float(np.nanmax(np.abs(got - ref)))
        raise VerificationError(
            f"generalized SDDMM disagrees with the reference "
            f"(max abs diff {worst:.3g}, atol {atol:g})",
            max_abs_diff=worst, atol=atol)
    return got
