"""Kernel self-verification against a brute-force reference.

The generic interpreter that powers the templates also yields a slow,
obviously-correct executor: evaluate the UDF for every edge and combine with
a plain scatter loop.  :func:`verify_spmm` / :func:`verify_sddmm` run a
kernel and that reference side by side -- the "sanity check" a user reaches
for after writing a new UDF or FDS (and what the paper's accuracy section
does at model level).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.sddmm import GeneralizedSDDMM
from repro.core.spmm import GeneralizedSpMM, _AGG_IDENTITY, _AGG_UFUNC
from repro.tensorir.evaluator import evaluate_batched

__all__ = ["verify_spmm", "verify_sddmm", "VerificationError"]


class VerificationError(AssertionError):
    """Kernel output disagrees with the brute-force reference."""


def _reference_spmm(kernel: GeneralizedSpMM, bindings) -> np.ndarray:
    csr = kernel.A.csr
    n_dst = kernel.A.num_dst
    base = kernel.aggregation if kernel.aggregation != "mean" else "sum"
    out = np.full((n_dst,) + kernel.msg_shape, _AGG_IDENTITY[base],
                  dtype=np.float32)
    rows = csr.row_of_edge()
    msgs = evaluate_batched(kernel.msg, bindings, {
        "src": csr.indices, "dst": rows, "eid": csr.edge_ids,
    })
    _AGG_UFUNC[base].at(out, rows, msgs)
    deg = np.diff(csr.indptr)
    out[deg == 0] = 0.0
    if kernel.aggregation == "mean":
        out /= np.maximum(deg, 1).reshape((-1,) + (1,) * (out.ndim - 1))
    return out


def verify_spmm(kernel: GeneralizedSpMM, bindings: Mapping[str, np.ndarray],
                atol: float = 1e-4) -> np.ndarray:
    """Run the kernel and the brute-force reference; raise on mismatch.

    Returns the kernel output on success.
    """
    got = kernel.run(bindings)
    ref = _reference_spmm(kernel, bindings)
    if not np.allclose(got, ref, atol=atol, equal_nan=True):
        worst = float(np.nanmax(np.abs(got - ref)))
        raise VerificationError(
            f"generalized SpMM disagrees with the reference "
            f"(max abs diff {worst:.3g}, atol {atol:g}); check the FDS and "
            "partitioning configuration")
    return got


def verify_sddmm(kernel: GeneralizedSDDMM, bindings: Mapping[str, np.ndarray],
                 atol: float = 1e-4) -> np.ndarray:
    """Run the kernel and the brute-force edge map; raise on mismatch."""
    got = kernel.run(bindings)
    csr = kernel.A.csr
    vals = evaluate_batched(kernel.edge_out, bindings, {
        "src": csr.indices, "dst": csr.row_of_edge(), "eid": csr.edge_ids,
    })
    ref = np.empty_like(got)
    ref[csr.edge_ids] = vals
    if not np.allclose(got, ref, atol=atol, equal_nan=True):
        worst = float(np.nanmax(np.abs(got - ref)))
        raise VerificationError(
            f"generalized SDDMM disagrees with the reference "
            f"(max abs diff {worst:.3g}, atol {atol:g})")
    return got
