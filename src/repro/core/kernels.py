"""Prebuilt GNN kernels on top of the SpMM/SDDMM templates.

Implements every kernel the paper evaluates (GCN aggregation, MLP
aggregation, dot-product and multi-head attention) plus the DGL builtin
message/edge functions the integration section cites (copy-u, copy-e,
u±v element-wise, u*e, attention-weighted aggregation).

Every builder returns a compiled kernel object whose ``run(bindings)``
executes and whose ``cost()`` reports the machine-model time.  Placeholder
names in the bindings dict match the builder docstrings.
"""

from __future__ import annotations

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.api import sddmm, spmat, spmm
from repro.core.fds import FDS, default_fds_for

__all__ = [
    "gcn_aggregation",
    "gcn_norm_aggregation",
    "graphsage_aggregation",
    "mlp_aggregation",
    "dot_attention",
    "multihead_dot_attention",
    "attention_weighted_aggregation",
    "rgcn_aggregation",
    "copy_u",
    "copy_e",
    "u_add_v",
    "u_sub_v",
    "u_mul_v",
    "u_mul_e",
    "e_div_sum",
]

#: default FDS per target and kernel pattern; the shared definition lives in
#: :func:`repro.core.fds.default_fds_for` so the DGL integration layer picks
#: identical schedules (and therefore identical cache keys)
_pick_fds = default_fds_for


def gcn_aggregation(A, n: int, feature_len: int, target: str = "cpu",
                    fds: FDS | None = None, **options):
    """Vanilla SpMM (paper Fig. 3a): copy source features, sum-aggregate.

    Bindings: ``XV`` of shape ``(n, feature_len)``.
    """
    A = spmat(A)
    XV = T.placeholder((n, feature_len), name="XV")
    msgfunc = dgl_builtins.copy_u_msg(XV)

    fds = fds or _pick_fds(target, feature_len, "spmm")
    return spmm(A, msgfunc, "sum", target=target, fds=fds, **options)


def graphsage_aggregation(A, n: int, feature_len: int, agg: str = "mean",
                          target: str = "cpu", fds: FDS | None = None, **options):
    """GraphSage neighborhood aggregation: copy source features, then a
    flexible reducer (``mean``/``max``/``sum``)."""
    A = spmat(A)
    XV = T.placeholder((n, feature_len), name="XV")
    msgfunc = dgl_builtins.copy_u_msg(XV)

    fds = fds or _pick_fds(target, feature_len, "spmm")
    return spmm(A, msgfunc, agg, target=target, fds=fds, **options)


def mlp_aggregation(A, n: int, d1: int, d2: int, target: str = "cpu",
                    agg: str = "max", fds: FDS | None = None, **options):
    """MLP aggregation (paper Figs. 1, 3b): each edge computes
    ``relu((XV[src] + XV[dst]) @ W)``; the destination aggregates (max).

    Bindings: ``XV`` of shape ``(n, d1)``; ``W`` of shape ``(d1, d2)``.
    """
    A = spmat(A)
    XV = T.placeholder((n, d1), name="XV")
    W = T.placeholder((d1, d2), name="W")

    def msgfunc(src, dst, eid):
        k = T.reduce_axis((0, d1), name="k")
        return T.compute(
            (d2,),
            lambda i: T.maximum(
                T.sum_reduce((XV[src, k] + XV[dst, k]) * W[k, i], axis=k), 0.0
            ),
            name="mlp_msg",
        )

    fds = fds or _pick_fds(target, d2, "spmm-mlp")
    return spmm(A, msgfunc, agg, target=target, fds=fds, **options)


def dot_attention(A, n: int, feature_len: int, target: str = "cpu",
                  fds: FDS | None = None, **options):
    """Dot-product attention (paper Fig. 4a): one score per edge.

    Bindings: ``XV`` of shape ``(n, feature_len)``.
    """
    A = spmat(A)
    XV = T.placeholder((n, feature_len), name="XV")
    edgefunc = dgl_builtins.u_dot_v_edge(XV, XV)

    fds = fds or _pick_fds(target, feature_len, "sddmm")
    return sddmm(A, edgefunc, target=target, fds=fds, **options)


def multihead_dot_attention(A, n: int, num_heads: int, head_dim: int,
                            target: str = "cpu", fds: FDS | None = None, **options):
    """Multi-head dot-product attention (paper Fig. 4b): ``num_heads``
    scores per edge.

    Bindings: ``XV`` of shape ``(n, num_heads, head_dim)``.
    """
    A = spmat(A)
    XV = T.placeholder((n, num_heads, head_dim), name="XV")
    edgefunc = dgl_builtins.u_dot_v_edge(XV, XV)

    fds = fds or _pick_fds(target, head_dim, "sddmm")
    return sddmm(A, edgefunc, target=target, fds=fds, **options)


def attention_weighted_aggregation(A, n: int, feature_len: int, m: int,
                                   target: str = "cpu", fds: FDS | None = None,
                                   **options):
    """GAT-style aggregation: sum of source features scaled by a per-edge
    attention weight (the ``u_mul_e`` + sum pattern).

    Bindings: ``XV`` of shape ``(n, feature_len)``, ``EW`` of shape ``(m,)``.
    """
    A = spmat(A)
    XV = T.placeholder((n, feature_len), name="XV")
    EW = T.placeholder((m,), name="EW")
    msgfunc = dgl_builtins.u_mul_e_msg(XV, EW)

    fds = fds or _pick_fds(target, feature_len, "spmm")
    return spmm(A, msgfunc, "sum", target=target, fds=fds, **options)


def gcn_norm_aggregation(A, n: int, feature_len: int, target: str = "cpu",
                         fds: FDS | None = None, **options):
    """Symmetrically normalized GCN aggregation (Kipf & Welling's
    ``D^{-1/2} A D^{-1/2}``): message = ``c[src] * XV[src] * c[dst]`` where
    ``c`` holds per-vertex ``1/sqrt(deg)`` coefficients.

    Bindings: ``XV`` of shape ``(n, feature_len)``; ``CN`` of shape ``(n,)``.
    """
    A = spmat(A)
    XV = T.placeholder((n, feature_len), name="XV")
    CN = T.placeholder((n,), name="CN")

    def msgfunc(src, dst, eid):
        return T.compute((feature_len,),
                         lambda i: XV[src, i] * CN[src] * CN[dst],
                         name="gcnn_msg")

    fds = fds or _pick_fds(target, feature_len, "spmm")
    return spmm(A, msgfunc, "sum", target=target, fds=fds, **options)


def rgcn_aggregation(A, n: int, m: int, num_relations: int, d_in: int,
                     d_out: int, target: str = "cpu", fds: FDS | None = None,
                     **options):
    """Relational GCN aggregation [Schlichtkrull et al.]: every edge carries
    a relation type and its message goes through that relation's weight
    matrix -- ``msg = XV[src] @ W[rel[eid]]``.

    A kernel *beyond* the paper's evaluated set, demonstrating the UDF
    flexibility claim: the relation lookup is an integer edge feature used
    to index a 3-D weight tensor inside the message function.

    Bindings: ``XV`` ``(n, d_in)``; ``W`` ``(num_relations, d_in, d_out)``;
    ``REL`` ``(m,)`` int64 relation ids.
    """
    A = spmat(A)
    XV = T.placeholder((n, d_in), name="XV")
    W = T.placeholder((num_relations, d_in, d_out), name="W")
    REL = T.placeholder((m,), name="REL", dtype="int64")

    def msgfunc(src, dst, eid):
        k = T.reduce_axis((0, d_in), name="k")
        return T.compute(
            (d_out,),
            lambda i: T.sum_reduce(XV[src, k] * W[REL[eid], k, i], axis=k),
            name="rgcn_msg",
        )

    fds = fds or _pick_fds(target, d_out, "spmm-mlp")
    return spmm(A, msgfunc, "sum", target=target, fds=fds, **options)


# ----------------------------------------------------------------------
# DGL builtin message functions (Sec. IV-B integration surface)
# ----------------------------------------------------------------------

def copy_u(A, n: int, feature_len: int, agg: str = "sum", target: str = "cpu",
           **options):
    """DGL builtin ``copy_u``: message = source vertex feature."""
    return graphsage_aggregation(A, n, feature_len, agg=agg, target=target, **options)


def copy_e(A, m: int, feature_len: int, agg: str = "sum", target: str = "cpu",
           **options):
    """DGL builtin ``copy_e``: message = edge feature.

    Bindings: ``XE`` of shape ``(m, feature_len)``.
    """
    A = spmat(A)
    XE = T.placeholder((m, feature_len), name="XE")
    msgfunc = dgl_builtins.copy_e_msg(XE)

    return spmm(A, msgfunc, agg, target=target,
                fds=_pick_fds(target, feature_len, "spmm"), **options)


def _binary_uv(opname: str):
    factory = {"add": dgl_builtins.u_add_v_msg,
               "sub": dgl_builtins.u_sub_v_msg,
               "mul": dgl_builtins.u_mul_v_msg}[opname]

    def build(A, n: int, feature_len: int, agg: str = "sum", target: str = "cpu",
              **options):
        A_ = spmat(A)
        XV = T.placeholder((n, feature_len), name="XV")
        msgfunc = factory(XV)

        return spmm(A_, msgfunc, agg, target=target,
                    fds=_pick_fds(target, feature_len, "spmm"), **options)

    build.__doc__ = (
        f"DGL builtin ``u_{opname}_v``: element-wise {opname} of endpoint "
        "features.  Bindings: ``XV`` of shape ``(n, feature_len)``."
    )
    return build


u_add_v = _binary_uv("add")
u_sub_v = _binary_uv("sub")
u_mul_v = _binary_uv("mul")


def u_mul_e(A, n: int, m: int, feature_len: int, agg: str = "sum",
            target: str = "cpu", **options):
    """DGL builtin ``u_mul_e``: source feature scaled by the edge feature.

    Bindings: ``XV`` of shape ``(n, feature_len)``, ``XE`` of shape
    ``(m, feature_len)``.
    """
    A = spmat(A)
    XV = T.placeholder((n, feature_len), name="XV")
    XE = T.placeholder((m, feature_len), name="XE")
    msgfunc = dgl_builtins.u_mul_e_msg(XV, XE)

    return spmm(A, msgfunc, agg, target=target,
                fds=_pick_fds(target, feature_len, "spmm"), **options)


def e_div_sum(A, m: int, target: str = "cpu", **options):
    """Edge-softmax denominator pattern: sum per-edge scalars into the
    destination (used to normalize attention scores).

    Bindings: ``ES`` of shape ``(m,)``.
    """
    A = spmat(A)
    ES = T.placeholder((m,), name="ES")

    def msgfunc(src, dst, eid):
        return T.compute((1,), lambda i: ES[eid], name="esum_msg")

    return spmm(A, msgfunc, "sum", target=target, **options)
