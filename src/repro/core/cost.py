"""Static analysis of UDF compute expressions + the aggregation cost model.

The machine models need two facts about a UDF that the templates extract
from its expression tree:

- :func:`udf_flops_per_item` -- arithmetic operations per vertex/edge beyond
  the plain copy+accumulate (0 for GCN aggregation's feature copy, ~2*d1*d2
  for MLP aggregation, ~2*d for a dot product);
- :func:`reads_endpoint` -- whether the UDF gathers the src and/or dst
  feature rows (drives the modeled memory traffic).

The second half of the module is the **segment-reduction cost model**: per
strategy, predicted combine seconds for one chunk as an affine function of
the chunk's shape statistics --

- ``values`` = edges x feature width (every strategy moves these bytes),
- ``segments`` = equal-destination runs (reduceat's per-segment inner-loop
  dispatch; the final fold of the parallel combine),
- ``distinct`` = distinct segment lengths (the bucketed strategy's
  per-bucket Python dispatch),
- a constant per-combine call overhead (one ``reduceat`` call; waking the
  pool for ``parallel``).

The coefficients are machine-specific: :mod:`repro.runtime.calibrate`
measures them with microbenchmarks once and persists a versioned profile
(keyed by CPU count + numpy version) that :func:`load_profile` validates
and rejects when stale or corrupt -- selection then cold-starts on the
hand-tuned heuristics in :mod:`repro.runtime.strategies`.  All
coefficients are clamped non-negative at load, which makes every
prediction monotone in the chunk statistics (wider features never lower a
predicted cost).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.tensorir import expr as E

__all__ = [
    "udf_flops_per_item", "reads_endpoint", "bytes_read_per_item",
    "COST_PROFILE_ENV", "COST_PROFILE_VERSION", "ChunkShape",
    "StrategyCost", "CostModel", "default_profile_path", "load_profile",
]

#: flop-equivalents per transcendental intrinsic call
_CALL_COST = 4.0


def _expr_flops(node: E.Expr) -> float:
    """Arithmetic cost of evaluating one scalar instance of ``node``."""
    if isinstance(node, (E.IntImm, E.FloatImm, E.Var, E.IterVar)):
        return 0.0
    if isinstance(node, E.TensorElem):
        return sum(_expr_flops(i) for i in node.indices)
    if isinstance(node, E.BinOp):
        return 1.0 + _expr_flops(node.a) + _expr_flops(node.b)
    if isinstance(node, E.Call):
        return _CALL_COST + sum(_expr_flops(a) for a in node.args)
    if isinstance(node, E.Select):
        return 1.0 + sum(_expr_flops(c) for c in node.children())
    if isinstance(node, E.Cast):
        return _expr_flops(node.value)
    if isinstance(node, E.Reduce):
        extent = 1
        for ax in node.axes:
            extent *= ax.extent
        return extent * (_expr_flops(node.source) + 1.0)
    raise TypeError(f"unknown node {type(node).__name__}")


def udf_flops_per_item(tensor: E.Tensor) -> float:
    """Total arithmetic per vertex/edge evaluation of the UDF output."""
    op = tensor.op
    if not isinstance(op, E.ComputeOp):
        return 0.0
    out_elems = 1
    for s in op.shape:
        out_elems *= s
    return out_elems * _expr_flops(op.body)


def reads_endpoint(tensor: E.Tensor, var_name: str) -> bool:
    """Does the UDF index any placeholder with the given free variable?"""
    op = tensor.op
    if not isinstance(op, E.ComputeOp):
        return False

    found = False

    def walk(e: E.Expr):
        nonlocal found
        if found:
            return
        if isinstance(e, E.TensorElem):
            for idx in e.indices:
                if _mentions(idx, var_name):
                    found = True
                    return
        for c in e.children():
            walk(c)

    walk(op.body)
    return found


def _mentions(e: E.Expr, name: str) -> bool:
    if isinstance(e, (E.Var, E.IterVar)) and e.name == name:
        return True
    return any(_mentions(c, name) for c in e.children())


def bytes_read_per_item(tensor: E.Tensor, var_name: str, elem_bytes: int = 4) -> float:
    """Bytes of endpoint-feature data the UDF reads per vertex/edge.

    Counts, for each tensor access indexed by ``var_name``, the number of
    distinct elements read across the output and reduce domains.
    """
    op = tensor.op
    if not isinstance(op, E.ComputeOp):
        return 0.0
    total = 0.0
    out_elems = 1
    for s in op.shape:
        out_elems *= s

    def walk(e: E.Expr, mult: float):
        nonlocal total
        if isinstance(e, E.TensorElem):
            if any(_mentions(i, var_name) for i in e.indices):
                # Distinct elements <= the iteration count of the free axes
                # appearing in the index; approximate by the reduce extents
                # times whether an output axis appears.
                total += mult
            return
        if isinstance(e, E.Reduce):
            extent = 1
            for ax in e.axes:
                extent *= ax.extent
            walk(e.source, mult * extent)
            return
        for c in e.children():
            walk(c, mult)

    walk(op.body, float(out_elems))
    return total * elem_bytes


# ----------------------------------------------------------------------
# the segment-reduction cost model
# ----------------------------------------------------------------------

#: environment override for the calibration-profile path
COST_PROFILE_ENV = "FEATGRAPH_COST_PROFILE"

#: persisted-profile schema version; bump on any coefficient-semantics
#: change so stale profiles are rejected, not silently misread
COST_PROFILE_VERSION = 1


@dataclass(frozen=True)
class ChunkShape:
    """Shape statistics of one chunk's segmented reduction."""

    n_edges: int      # edges in the chunk
    n_segments: int   # equal-destination runs
    n_distinct: int   # distinct segment lengths (degree-bucket count)
    width: int        # feature elements per edge

    @property
    def values(self) -> int:
        return self.n_edges * max(1, self.width)


@dataclass(frozen=True)
class StrategyCost:
    """Affine combine-cost function of one strategy (seconds)."""

    per_call: float = 0.0      # fixed overhead per combine invocation
    per_value: float = 0.0     # per edge-value moved/reduced
    per_segment: float = 0.0   # per destination segment
    per_distinct: float = 0.0  # per distinct degree (bucket dispatch)

    def seconds(self, shape: ChunkShape) -> float:
        return (self.per_call
                + self.per_value * shape.values
                + self.per_segment * shape.n_segments
                + self.per_distinct * shape.n_distinct)

    def as_dict(self) -> dict:
        return {"per_call": self.per_call, "per_value": self.per_value,
                "per_segment": self.per_segment,
                "per_distinct": self.per_distinct}

    @classmethod
    def from_dict(cls, data: dict) -> "StrategyCost":
        # clamp: a negative coefficient (noise-fit artifact) would break the
        # monotonicity guarantee the selector and its tests rely on
        return cls(**{k: max(0.0, float(data.get(k, 0.0)))
                      for k in ("per_call", "per_value", "per_segment",
                                "per_distinct")})


class CostModel:
    """Calibrated per-strategy cost functions + the argmin selector."""

    def __init__(self, costs: dict, *, cpu_count: int | None = None,
                 numpy_version: str | None = None):
        self.costs = dict(costs)  # strategy name -> StrategyCost
        self.cpu_count = cpu_count
        self.numpy_version = numpy_version

    def predict(self, strategy: str, shape: ChunkShape,
                workers: int = 1) -> float:
        """Predicted combine seconds for one chunk.

        ``parallel`` amortizes the value/segment terms across ``workers``
        (segment-aligned shards) but pays its full per-call pool-dispatch
        overhead plus the deterministic final fold (one vectorized combine
        over all segments); with one worker it degenerates to ``reduceat``
        exactly like the strategy itself does.
        """
        cost = self.costs[strategy]
        if strategy != "parallel":
            return cost.seconds(shape)
        if workers <= 1:
            return self.predict("reduceat", shape) \
                if "reduceat" in self.costs else cost.seconds(shape)
        shard = (cost.per_value * shape.values
                 + cost.per_segment * shape.n_segments) / workers
        fold = cost.per_distinct * shape.n_segments * max(1, shape.width)
        return cost.per_call + shard + fold

    def select(self, shape: ChunkShape, workers: int = 1) -> str:
        """The cheapest strategy for one chunk (deterministic tie-break by
        registry order: reduceat < bucketed < parallel)."""
        order = ("reduceat", "bucketed", "parallel")
        best, best_cost = "reduceat", float("inf")
        for name in order:
            if name not in self.costs:
                continue
            if name == "parallel" and workers <= 1:
                continue
            if shape.n_edges == 0 or shape.n_segments == 0:
                return "reduceat"
            predicted = self.predict(name, shape, workers)
            if predicted < best_cost:
                best, best_cost = name, predicted
        return best

    def as_dict(self) -> dict:
        return {
            "version": COST_PROFILE_VERSION,
            "cpu_count": self.cpu_count,
            "numpy": self.numpy_version,
            "coefficients": {name: c.as_dict()
                             for name, c in sorted(self.costs.items())},
        }


def default_profile_path() -> Path:
    """Where the calibration profile lives: ``FEATGRAPH_COST_PROFILE`` or
    the user cache directory."""
    override = os.environ.get(COST_PROFILE_ENV, "").strip()
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return Path(base) / "featgraph" / \
        f"cost_profile_v{COST_PROFILE_VERSION}.json"


def load_profile(path: Path | str | None = None) -> CostModel | None:
    """Load and validate a persisted calibration profile.

    Returns ``None`` -- the cold-start signal -- when the file is missing,
    unparseable, structurally wrong, schema-versioned differently, or
    **stale**: recorded CPU count or numpy version no longer match this
    machine (the coefficients would describe different hardware/BLAS
    dispatch).  Callers fall back to the hand-tuned heuristics.
    """
    import numpy as np

    path = Path(path) if path is not None else default_profile_path()
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict):
        return None
    if data.get("version") != COST_PROFILE_VERSION:
        return None
    if data.get("cpu_count") != os.cpu_count():
        return None
    if data.get("numpy") != np.__version__:
        return None
    coeffs = data.get("coefficients")
    if not isinstance(coeffs, dict) or not coeffs:
        return None
    costs = {}
    for name, entry in coeffs.items():
        if not isinstance(entry, dict):
            return None
        try:
            costs[name] = StrategyCost.from_dict(entry)
        except (TypeError, ValueError):
            return None
    if "reduceat" not in costs:
        return None
    return CostModel(costs, cpu_count=data.get("cpu_count"),
                     numpy_version=data.get("numpy"))
