"""Static analysis of UDF compute expressions.

The machine models need two facts about a UDF that the templates extract
from its expression tree:

- :func:`udf_flops_per_item` -- arithmetic operations per vertex/edge beyond
  the plain copy+accumulate (0 for GCN aggregation's feature copy, ~2*d1*d2
  for MLP aggregation, ~2*d for a dot product);
- :func:`reads_endpoint` -- whether the UDF gathers the src and/or dst
  feature rows (drives the modeled memory traffic).
"""

from __future__ import annotations

from repro.tensorir import expr as E

__all__ = ["udf_flops_per_item", "reads_endpoint", "bytes_read_per_item"]

#: flop-equivalents per transcendental intrinsic call
_CALL_COST = 4.0


def _expr_flops(node: E.Expr) -> float:
    """Arithmetic cost of evaluating one scalar instance of ``node``."""
    if isinstance(node, (E.IntImm, E.FloatImm, E.Var, E.IterVar)):
        return 0.0
    if isinstance(node, E.TensorElem):
        return sum(_expr_flops(i) for i in node.indices)
    if isinstance(node, E.BinOp):
        return 1.0 + _expr_flops(node.a) + _expr_flops(node.b)
    if isinstance(node, E.Call):
        return _CALL_COST + sum(_expr_flops(a) for a in node.args)
    if isinstance(node, E.Select):
        return 1.0 + sum(_expr_flops(c) for c in node.children())
    if isinstance(node, E.Cast):
        return _expr_flops(node.value)
    if isinstance(node, E.Reduce):
        extent = 1
        for ax in node.axes:
            extent *= ax.extent
        return extent * (_expr_flops(node.source) + 1.0)
    raise TypeError(f"unknown node {type(node).__name__}")


def udf_flops_per_item(tensor: E.Tensor) -> float:
    """Total arithmetic per vertex/edge evaluation of the UDF output."""
    op = tensor.op
    if not isinstance(op, E.ComputeOp):
        return 0.0
    out_elems = 1
    for s in op.shape:
        out_elems *= s
    return out_elems * _expr_flops(op.body)


def reads_endpoint(tensor: E.Tensor, var_name: str) -> bool:
    """Does the UDF index any placeholder with the given free variable?"""
    op = tensor.op
    if not isinstance(op, E.ComputeOp):
        return False

    found = False

    def walk(e: E.Expr):
        nonlocal found
        if found:
            return
        if isinstance(e, E.TensorElem):
            for idx in e.indices:
                if _mentions(idx, var_name):
                    found = True
                    return
        for c in e.children():
            walk(c)

    walk(op.body)
    return found


def _mentions(e: E.Expr, name: str) -> bool:
    if isinstance(e, (E.Var, E.IterVar)) and e.name == name:
        return True
    return any(_mentions(c, name) for c in e.children())


def bytes_read_per_item(tensor: E.Tensor, var_name: str, elem_bytes: int = 4) -> float:
    """Bytes of endpoint-feature data the UDF reads per vertex/edge.

    Counts, for each tensor access indexed by ``var_name``, the number of
    distinct elements read across the output and reduce domains.
    """
    op = tensor.op
    if not isinstance(op, E.ComputeOp):
        return 0.0
    total = 0.0
    out_elems = 1
    for s in op.shape:
        out_elems *= s

    def walk(e: E.Expr, mult: float):
        nonlocal total
        if isinstance(e, E.TensorElem):
            if any(_mentions(i, var_name) for i in e.indices):
                # Distinct elements <= the iteration count of the free axes
                # appearing in the index; approximate by the reduce extents
                # times whether an output axis appears.
                total += mult
            return
        if isinstance(e, E.Reduce):
            extent = 1
            for ax in e.axes:
                extent *= ax.extent
            walk(e.source, mult * extent)
            return
        for c in e.children():
            walk(c, mult)

    walk(op.body, float(out_elems))
    return total * elem_bytes
