"""The generalized SDDMM template (edge-wise computations, paper Eq. 2).

For every edge ``(u, v)`` computes ``H[uv] = edgefunc(u, v, eid)`` -- e.g.
dot-product attention (Fig. 4a) or multi-head attention (Fig. 4b).

Template-side optimizations:

- **Hilbert-curve traversal** (CPU, Sec. III-C1): edges are visited in
  Hilbert order of their (dst, src) coordinates so both endpoint feature
  reads stay cache-local across a spectrum of granularities;
- **feature-dimension tiling** composes with the traversal;
- on GPU, the Fig. 7b parallelization: edges across blocks, the dot-product
  reduction across the threads of a block via **tree reduction** when the
  FDS requests it.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

import numpy as np

from repro.core import cost as cost_analysis
from repro.core.api import SparseMat
from repro.core.bindings import validate_bindings
from repro.core.fds import FDS, FDSInfo, default_fds
from repro.graph.hilbert import hilbert_order
from repro.graph.partition import feature_tiles
from repro.hwsim import cpu as cpu_model
from repro.hwsim import gpu as gpu_model
from repro.hwsim.report import CostReport
from repro.hwsim.spec import CPUSpec, GPUSpec, TESLA_V100, XEON_8124M
from repro.runtime.engine import Executor, ScatterSink
from repro.runtime.plan import (ChunkPolicy, EdgeTask, ExecutionPlan,
                                GatherPlan, Stage)
from repro.tensorir.evaluator import evaluate_batched
from repro.tensorir.expr import ComputeOp, Tensor, Var
from repro.tensorir.runtime import ExecStats, WorkPool
from repro.tensorir.vectorize import VectorizeError, compile_batched, compile_enabled

__all__ = ["GeneralizedSDDMM"]

#: "not compiled yet" marker for the lazily built vector program
_UNCOMPILED = object()


class GeneralizedSDDMM:
    """A compiled generalized-SDDMM kernel bound to one graph topology."""

    def __init__(
        self,
        A: SparseMat,
        edgefunc: Callable,
        target: str = "cpu",
        fds: FDS | Callable | None = None,
        *,
        num_feature_partitions: int | str = "auto",
        hilbert: bool | None = None,
        num_cuda_blocks: int | None = None,
        chunk_edges: int = 1 << 17,
        _compiled=None,
    ):
        if target not in ("cpu", "gpu"):
            raise ValueError(f"unknown target {target!r}")
        self.A = A
        self.target = target
        self.edgefunc = edgefunc
        self._stage = None
        self._compile_record = None
        self._vector_program = _UNCOMPILED
        self.exec_stats = ExecStats()
        if _compiled is not None:
            # Constructed by the compile pipeline: the front passes already
            # traced the UDF and applied/validated the FDS -- or, on the
            # template-bind path, another topology's kernel did and this one
            # inherits the trace (bound_roles then switches binding
            # validation to graph-axis semantics).
            self.fds = _compiled.fds_obj
            self.src_var = _compiled.src_var
            self.dst_var = _compiled.dst_var
            self.eid_var = _compiled.eid_var
            out = _compiled.out
            self.fds_info: FDSInfo = _compiled.fds_info
            self._stage = _compiled.stage
            self.graph_roles = getattr(_compiled, "bound_roles", None)
        else:
            if fds is None:
                self.fds = default_fds()
            elif isinstance(fds, FDS):
                self.fds = fds
            else:
                self.fds = FDS(fds)

            self.src_var = Var("src")
            self.dst_var = Var("dst")
            self.eid_var = Var("eid")
            out = edgefunc(self.src_var, self.dst_var, self.eid_var)
            if not isinstance(out, Tensor) or not isinstance(out.op, ComputeOp):
                raise TypeError("edgefunc must return a tensorir compute Tensor")
            self.fds_info = self.fds.inspect(out, target=target)
            self.graph_roles = None
        self.edge_out = out
        self.out_shape = out.shape
        self.out_width = int(np.prod(out.shape))
        self.udf_flops = cost_analysis.udf_flops_per_item(out)
        self.tree_reduce = self.fds_info.tree_reduce
        # Feature length read per endpoint: with a reduction (dot products)
        # each output element scans the reduce domain; otherwise the output
        # width itself is what is read.
        red = out.op.reduce_axis
        if red:
            reduce_extent = int(np.prod([ax.extent for ax in red]))
            self.feature_len = reduce_extent * self.out_width
        else:
            self.feature_len = self.out_width

        f0 = out.shape[0]
        if num_feature_partitions == "auto":
            tile = self.fds_info.feature_tile
            self.num_feature_partitions = math.ceil(f0 / tile) if tile else 1
        else:
            self.num_feature_partitions = max(1, int(num_feature_partitions))
        self.num_feature_partitions = min(self.num_feature_partitions, f0)

        # Hilbert traversal defaults on for CPU edge-wise kernels.
        self.hilbert = (target == "cpu") if hilbert is None else bool(hilbert)
        self.num_cuda_blocks = num_cuda_blocks
        if int(chunk_edges) < 1:
            raise ValueError("chunk_edges must be >= 1")
        self.chunk_edges = int(chunk_edges)
        self._order: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def roles(self) -> dict:
        """Placeholder name -> graph-axis role, mirroring
        :attr:`GeneralizedSpMM.roles` for the fusion planner."""
        if self.graph_roles is not None:
            return dict(self.graph_roles)
        from repro.core.bindings import graph_axis_roles

        return graph_axis_roles(self.edge_out)

    def _edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(src, dst, eid) in traversal order."""
        csr = self.A.csr
        dst = csr.row_of_edge()
        src = csr.indices
        eid = csr.edge_ids
        if self.hilbert:
            if self._order is None:
                self._order = hilbert_order(dst, src, csr.shape[0], csr.shape[1])
            o = self._order
            return src[o], dst[o], eid[o]
        return src, dst, eid

    def run(self, bindings: Mapping[str, np.ndarray],
            out: np.ndarray | None = None,
            pool: "WorkPool | None" = None) -> np.ndarray:
        """Execute the kernel: returns ``(nnz, *out_shape)`` float32,
        indexed by original edge id.

        With ``pool``, each feature tile's edge chunks are dispatched
        across the workers -- one tile at a time, preserving the
        cooperative one-partition-at-a-time order (Sec. IV-A).  Chunks
        write disjoint edge-id rows, so they are race-free.
        """
        validate_bindings(self.edge_out, bindings,
                          f"sddmm[{self.edge_out.name}]",
                          graph_dims={"n_src": self.A.num_src,
                                      "n_dst": self.A.num_dst,
                                      "m": self.A.nnz},
                          graph_roles=self.graph_roles)
        m = self.A.nnz
        result = out if out is not None else np.empty(
            (m,) + self.out_shape, dtype=np.float32
        )
        if result.shape != (m,) + self.out_shape:
            raise ValueError("out has wrong shape")
        plan = self.execution_plan(result)
        Executor(stats=self.exec_stats, pool=pool).run(plan, bindings)
        return result

    def execution_plan(self, result: np.ndarray) -> ExecutionPlan:
        """Lower this bound kernel to an execution plan writing ``result``.

        One :class:`~repro.runtime.plan.EdgeTask` per feature tile over
        flat (non-row-aligned) chunks of the traversal-ordered edge list;
        each stage scatters its values into the tile's column window of the
        edge-id-indexed output.
        """
        src, dst, eid = self._edge_arrays()
        gather = GatherPlan(src, dst, eid)
        axis0 = self.edge_out.op.axis[0].name
        prog = self.vector_program() if compile_enabled() else None
        bounds = ChunkPolicy(self.chunk_edges, row_aligned=False).bounds(
            nnz=self.A.nnz, prog=prog)
        tasks = []
        for lo, hi in feature_tiles(self.out_shape[0],
                                    self.num_feature_partitions):
            tile_sizes = (hi - lo,) + self.out_shape[1:]

            def evaluate(bindings, ctx, tile=(lo, hi), sizes=tile_sizes):
                if prog is not None:
                    vals = prog.run(bindings, ctx.batch,
                                    axis_ranges={axis0: tile})
                    return vals, prog.bytes_moved(ctx.size, sizes)
                vals = evaluate_batched(self.edge_out, bindings, ctx.batch,
                                        axis_ranges={axis0: tile})
                return vals, 0

            tasks.append(EdgeTask(
                gather=gather, bounds=bounds,
                stages=[Stage(self.edge_out.name, evaluate,
                              ScatterSink(result, tile=(lo, hi)),
                              compiled=prog is not None)],
                needs_segments=False))
        return ExecutionPlan(
            tasks, label=f"sddmm[{self.edge_out.name}]",
            # role extents + compiled program for the plan verifier
            extras={"verify": {"dims": {"n_src": self.A.num_src,
                                        "n_dst": self.A.num_dst,
                                        "m": self.A.nnz},
                               "programs": {self.edge_out.name: prog},
                               "target": f"sddmm[{self.edge_out.name}]"}})

    def vector_program(self):
        """The compiled batched-UDF program this kernel executes per chunk
        (:mod:`repro.tensorir.vectorize`), or ``None`` when the edge
        function falls outside the vectorizer's subset and chunks run
        interpreted.  Set by the pipeline's ``vectorize`` pass; built
        lazily for kernels constructed directly."""
        if self._vector_program is _UNCOMPILED:
            try:
                self._vector_program = compile_batched(self.edge_out)
            except VectorizeError:
                self._vector_program = None
        return self._vector_program

    # ------------------------------------------------------------------
    def cost(self, spec: CPUSpec | GPUSpec | None = None, *, threads: int = 1,
             stats=None, frame: cpu_model.CPUFrameParams | None = None) -> CostReport:
        """Machine-model execution time of this kernel."""
        if stats is None:
            stats = self.A.stats()
        if self.target == "cpu":
            cpu_spec = spec if isinstance(spec, CPUSpec) else XEON_8124M
            return cpu_model.sddmm_time(
                cpu_spec, stats, self.feature_len,
                frame=frame or cpu_model.FEATGRAPH_CPU,
                udf_flops_per_edge=self.udf_flops,
                out_width=self.out_width,
                num_feature_partitions=self.num_feature_partitions,
                hilbert=self.hilbert,
                threads=threads,
            )
        gpu_spec = spec if isinstance(spec, GPUSpec) else TESLA_V100
        return gpu_model.sddmm_coop_time(
            gpu_spec, stats, self.feature_len,
            out_width=self.out_width,
            tree_reduce=self.tree_reduce,
            num_blocks=self.num_cuda_blocks,
        )

    # ------------------------------------------------------------------
    def fds_stage(self):
        """The FDS-applied schedule stage for the traced edge function
        (lazily built for directly constructed kernels; supplied by the
        pipeline's ``fuse_fds`` pass otherwise)."""
        if self._stage is None:
            sched = self.fds.apply(self.edge_out)
            self._stage = sched[self.edge_out]
        return self._stage

    @property
    def compiled(self):
        """This kernel's :class:`~repro.core.compile.CompileRecord`:
        lowering artifacts plus per-pass compile timings."""
        from repro.core.compile import ensure_compiled

        return ensure_compiled(self)

    def compile_timings(self) -> dict:
        """Per-pass wall-clock seconds spent compiling this kernel."""
        return self.compiled.timings_dict()

    def lowered_ir(self):
        """Representative fused-kernel IR: the loop-nest statement produced
        by the compile pipeline's ``lower`` and ``simplify`` passes (see
        :mod:`repro.core.compile`).  Pretty-print with
        :func:`repro.tensorir.ir.stmt_to_str`.  Kernels bound from a cached
        template build it on demand against their own topology."""
        artifacts = self.compiled.artifacts
        if "ir" not in artifacts:
            from repro.core.compile import sddmm_loop_nest
            from repro.tensorir.simplify import simplify_stmt

            artifacts["ir"] = simplify_stmt(sddmm_loop_nest(self))
        return artifacts["ir"]

    def analysis_report(self):
        """The :class:`~repro.tensorir.analysis.AnalysisReport` from the
        compile pipeline's ``analyze`` pass: race, bounds, and footprint
        diagnostics for this kernel's lowered loop nest.  Bound kernels
        inherit their template's report."""
        artifacts = self.compiled.artifacts
        if artifacts.get("analysis") is None:
            from repro.tensorir.analysis import analyze_ir

            artifacts["analysis"] = analyze_ir(self.lowered_ir(),
                                               target=self.target)
        return artifacts["analysis"]

    def verify_report(self):
        """The plan verifier's :class:`AnalysisReport` (rules FG006-FG010,
        :mod:`repro.runtime.verify`) for this kernel's execution plan; set
        by the pipeline's ``verify_plan`` pass, computed on demand for
        bound or directly constructed kernels (topology-dependent, so
        never inherited from the template)."""
        artifacts = self.compiled.artifacts
        if artifacts.get("plan_verify") is None:
            from repro.runtime.verify import verify_kernel

            artifacts["plan_verify"] = verify_kernel(self)
        return artifacts["plan_verify"]

    def cuda_source(self, name: str = "fused_sddmm",
                    threads_per_block: int = 256) -> str:
        """CUDA C source of the fused generalized-SDDMM kernel (the compile
        pipeline's ``codegen`` pass; see
        :func:`repro.core.compile.sddmm_cuda_source`)."""
        from repro.core.compile import sddmm_cuda_source

        return sddmm_cuda_source(self, name=name,
                                 threads_per_block=threads_per_block)

    def __repr__(self):
        return (
            f"GeneralizedSDDMM(target={self.target}, out={self.out_shape}, "
            f"f={self.feature_len}, hilbert={self.hilbert}, "
            f"tree_reduce={self.tree_reduce})"
        )
