"""The generalized SDDMM template (edge-wise computations, paper Eq. 2).

For every edge ``(u, v)`` computes ``H[uv] = edgefunc(u, v, eid)`` -- e.g.
dot-product attention (Fig. 4a) or multi-head attention (Fig. 4b).

Template-side optimizations:

- **Hilbert-curve traversal** (CPU, Sec. III-C1): edges are visited in
  Hilbert order of their (dst, src) coordinates so both endpoint feature
  reads stay cache-local across a spectrum of granularities;
- **feature-dimension tiling** composes with the traversal;
- on GPU, the Fig. 7b parallelization: edges across blocks, the dot-product
  reduction across the threads of a block via **tree reduction** when the
  FDS requests it.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping

import numpy as np

from repro.core import cost as cost_analysis
from repro.core.api import SparseMat
from repro.core.bindings import validate_bindings
from repro.core.fds import FDS, FDSInfo, default_fds
from repro.graph.hilbert import hilbert_order
from repro.graph.partition import feature_tiles
from repro.hwsim import cpu as cpu_model
from repro.hwsim import gpu as gpu_model
from repro.hwsim.report import CostReport
from repro.hwsim.spec import CPUSpec, GPUSpec, TESLA_V100, XEON_8124M
from repro.tensorir.evaluator import evaluate_batched
from repro.tensorir.expr import ComputeOp, Tensor, Var

__all__ = ["GeneralizedSDDMM"]


class GeneralizedSDDMM:
    """A compiled generalized-SDDMM kernel bound to one graph topology."""

    def __init__(
        self,
        A: SparseMat,
        edgefunc: Callable,
        target: str = "cpu",
        fds: FDS | Callable | None = None,
        *,
        num_feature_partitions: int | str = "auto",
        hilbert: bool | None = None,
        num_cuda_blocks: int | None = None,
        chunk_edges: int = 1 << 17,
    ):
        if target not in ("cpu", "gpu"):
            raise ValueError(f"unknown target {target!r}")
        self.A = A
        self.target = target
        self.edgefunc = edgefunc
        if fds is None:
            self.fds = default_fds()
        elif isinstance(fds, FDS):
            self.fds = fds
        else:
            self.fds = FDS(fds)

        self.src_var = Var("src")
        self.dst_var = Var("dst")
        self.eid_var = Var("eid")
        out = edgefunc(self.src_var, self.dst_var, self.eid_var)
        if not isinstance(out, Tensor) or not isinstance(out.op, ComputeOp):
            raise TypeError("edgefunc must return a tensorir compute Tensor")
        self.edge_out = out
        self.out_shape = out.shape
        self.out_width = int(np.prod(out.shape))
        self.fds_info: FDSInfo = self.fds.inspect(out, target=target)
        self.udf_flops = cost_analysis.udf_flops_per_item(out)
        self.tree_reduce = self.fds_info.tree_reduce
        # Feature length read per endpoint: with a reduction (dot products)
        # each output element scans the reduce domain; otherwise the output
        # width itself is what is read.
        red = out.op.reduce_axis
        if red:
            reduce_extent = int(np.prod([ax.extent for ax in red]))
            self.feature_len = reduce_extent * self.out_width
        else:
            self.feature_len = self.out_width

        f0 = out.shape[0]
        if num_feature_partitions == "auto":
            tile = self.fds_info.feature_tile
            self.num_feature_partitions = math.ceil(f0 / tile) if tile else 1
        else:
            self.num_feature_partitions = max(1, int(num_feature_partitions))
        self.num_feature_partitions = min(self.num_feature_partitions, f0)

        # Hilbert traversal defaults on for CPU edge-wise kernels.
        self.hilbert = (target == "cpu") if hilbert is None else bool(hilbert)
        self.num_cuda_blocks = num_cuda_blocks
        if int(chunk_edges) < 1:
            raise ValueError("chunk_edges must be >= 1")
        self.chunk_edges = int(chunk_edges)
        self._order: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(src, dst, eid) in traversal order."""
        csr = self.A.csr
        dst = csr.row_of_edge()
        src = csr.indices
        eid = csr.edge_ids
        if self.hilbert:
            if self._order is None:
                self._order = hilbert_order(dst, src, csr.shape[0], csr.shape[1])
            o = self._order
            return src[o], dst[o], eid[o]
        return src, dst, eid

    def run(self, bindings: Mapping[str, np.ndarray],
            out: np.ndarray | None = None) -> np.ndarray:
        """Execute the kernel: returns ``(nnz, *out_shape)`` float32,
        indexed by original edge id."""
        validate_bindings(self.edge_out, bindings,
                          f"sddmm[{self.edge_out.name}]")
        m = self.A.nnz
        result = out if out is not None else np.empty(
            (m,) + self.out_shape, dtype=np.float32
        )
        if result.shape != (m,) + self.out_shape:
            raise ValueError("out has wrong shape")
        src, dst, eid = self._edge_arrays()
        axis0 = self.edge_out.op.axis[0].name
        for lo, hi in feature_tiles(self.out_shape[0], self.num_feature_partitions):
            for c0 in range(0, m, self.chunk_edges):
                c1 = min(m, c0 + self.chunk_edges)
                vals = evaluate_batched(
                    self.edge_out, bindings,
                    {"src": src[c0:c1], "dst": dst[c0:c1], "eid": eid[c0:c1]},
                    axis_ranges={axis0: (lo, hi)},
                )
                result[eid[c0:c1], lo:hi] = vals
        return result

    # ------------------------------------------------------------------
    def cost(self, spec: CPUSpec | GPUSpec | None = None, *, threads: int = 1,
             stats=None, frame: cpu_model.CPUFrameParams | None = None) -> CostReport:
        """Machine-model execution time of this kernel."""
        if stats is None:
            stats = self.A.stats()
        if self.target == "cpu":
            cpu_spec = spec if isinstance(spec, CPUSpec) else XEON_8124M
            return cpu_model.sddmm_time(
                cpu_spec, stats, self.feature_len,
                frame=frame or cpu_model.FEATGRAPH_CPU,
                udf_flops_per_edge=self.udf_flops,
                out_width=self.out_width,
                num_feature_partitions=self.num_feature_partitions,
                hilbert=self.hilbert,
                threads=threads,
            )
        gpu_spec = spec if isinstance(spec, GPUSpec) else TESLA_V100
        return gpu_model.sddmm_coop_time(
            gpu_spec, stats, self.feature_len,
            out_width=self.out_width,
            tree_reduce=self.tree_reduce,
            num_blocks=self.num_cuda_blocks,
        )

    def cuda_source(self, name: str = "fused_sddmm",
                    threads_per_block: int = 256) -> str:
        """CUDA C source of the fused generalized-SDDMM kernel.

        The Fig. 7b parallelization: one edge per block; when the FDS asked
        for tree reduction, the block's threads cooperate on the reduce axis
        through shared memory (Harris [34]); otherwise the edge function runs
        on thread 0.  Emitted for inspection; structure covered by tests.
        """
        from repro.tensorir import expr as E
        from repro.tensorir.cuda_codegen import expr_to_c
        from repro.tensorir.lower import (_find_reduce, _replace_reduce,
                                          inline_computes, substitute)
        from repro.tensorir.simplify import simplify

        m = self.A.nnz
        w = self.out_width
        body = inline_computes(self.edge_out.op.body)
        mapping = {self.src_var.name: E.Var("__src", "int64"),
                   self.dst_var.name: E.Var("__dst", "int64"),
                   self.eid_var.name: E.Var("__eid", "int64")}
        for pos, ax in enumerate(self.edge_out.op.axis):
            mapping[ax.name] = E.Var(f"i{pos}", "int64")
        body = substitute(body, mapping)
        red = _find_reduce(body)

        lines = [
            f'extern "C" __global__ void {name}(',
            "    float* __restrict__ out,",
            "    const long* __restrict__ A_src,",
            "    const long* __restrict__ A_dst,",
            "    const long* __restrict__ A_edge_ids,",
        ]
        for t in self.edge_out.op.input_tensors():
            ctype = "const long*" if t.dtype.startswith("int") else "const float*"
            lines.append(f"    {ctype} __restrict__ {t.name},")
        lines[-1] = lines[-1].rstrip(",") + ") {"
        if self.tree_reduce and red is not None:
            lines.append(f"  __shared__ float _reduce_buf[{threads_per_block}];")
        lines.append("  long e = blockIdx.x;")
        lines.append(f"  if (e >= {m}) return;")
        lines.append("  long __src = A_src[e];")
        lines.append("  long __dst = A_dst[e];")
        lines.append("  long __eid = A_edge_ids[e];")
        indent = "  "
        closes = []
        for pos, ax in enumerate(self.edge_out.op.axis):
            if ax.extent > 1:
                lines.append(f"{indent}for (int i{pos} = 0; i{pos} < "
                             f"{ax.extent}; ++i{pos}) {{")
                closes.append(indent + "}")
                indent += "  "
            else:
                lines.append(f"{indent}const int i{pos} = 0;")
        strides = [int(np.prod(self.out_shape[p + 1:]))
                   for p in range(len(self.out_shape))]
        out_idx = " + ".join(
            [f"__eid * {w}"]
            + [f"i{p} * {s}" if s != 1 else f"i{p}"
               for p, s in enumerate(strides)])
        if red is None:
            lines.append(f"{indent}if (threadIdx.x == 0) "
                         f"out[{out_idx}] = {expr_to_c(simplify(body))};")
        elif self.tree_reduce:
            kvar = red.axes[0]
            src_c = expr_to_c(simplify(red.source))
            lines.append(f"{indent}// tree reduction across threadIdx.x "
                         "(paper Fig. 7b, Harris [34])")
            lines.append(f"{indent}float _acc = 0.0f;")
            lines.append(f"{indent}for (int {kvar.name} = threadIdx.x; "
                         f"{kvar.name} < {kvar.extent}; "
                         f"{kvar.name} += blockDim.x) _acc += {src_c};")
            lines.append(f"{indent}_reduce_buf[threadIdx.x] = _acc;")
            lines.append(f"{indent}__syncthreads();")
            lines.append(f"{indent}for (int _s = blockDim.x / 2; _s > 0; "
                         "_s >>= 1) {")
            lines.append(f"{indent}  if (threadIdx.x < _s) "
                         "_reduce_buf[threadIdx.x] += "
                         "_reduce_buf[threadIdx.x + _s];")
            lines.append(f"{indent}  __syncthreads();")
            lines.append(f"{indent}}}")
            wrapped = expr_to_c(simplify(_replace_reduce(
                body, E.Var("_reduce_buf[0]", "float32"))))
            lines.append(f"{indent}if (threadIdx.x == 0) "
                         f"out[{out_idx}] = {wrapped};")
        else:
            kvar = red.axes[0]
            lines.append(f"{indent}float _m = 0.0f;")
            lines.append(f"{indent}for (int {kvar.name} = 0; {kvar.name} < "
                         f"{kvar.extent}; ++{kvar.name}) "
                         f"_m += {expr_to_c(simplify(red.source))};")
            wrapped = expr_to_c(simplify(_replace_reduce(
                body, E.Var("_m", "float32"))))
            lines.append(f"{indent}if (threadIdx.x == 0) "
                         f"out[{out_idx}] = {wrapped};")
        lines.extend(reversed(closes))
        lines.append("}")
        return "\n".join(lines) + "\n"

    def __repr__(self):
        return (
            f"GeneralizedSDDMM(target={self.target}, out={self.out_shape}, "
            f"f={self.feature_len}, hilbert={self.hilbert}, "
            f"tree_reduce={self.tree_reduce})"
        )
