"""Unified kernel compilation: KernelSpec, CompilePipeline, KernelCache.

The paper's integration story (Sec. IV-B) hinges on compiling a kernel once
per graph topology and amortizing that cost across message-passing calls.
Before this module, three call paths -- :mod:`repro.core.api`,
:class:`repro.core.backend.FeatGraphBackend`, and
:class:`repro.minidgl.backends.FeatGraphDGLBackend` -- each lowered kernels
through their own inline sequence and cached them per backend instance, so
the same (graph, UDF, FDS, target) kernel was rebuilt per object and per
tuner trial.

This module makes compilation first-class:

- :class:`KernelSpec` canonically identifies a kernel: template kind, a
  canonical UDF expression signature (stable under the tracer's fresh
  variable names), aggregation, target, a canonical FDS schedule signature,
  the graph's content fingerprint, input/output shapes, and template
  options.  Two traces of structurally identical kernels -- even from
  different backends -- produce equal specs.

- :class:`CompilePipeline` is an explicit sequence of named passes::

      build_expr -> fuse_fds -> lower -> validate -> analyze -> simplify
        -> vectorize -> codegen

  The front passes (``build_expr``, ``fuse_fds``) trace the UDF and apply
  the feature-dimension schedule; their result forms the spec used for the
  cache lookup.  The back passes run only on a miss and produce the loop
  nest IR, the compiled batched-UDF program the templates execute
  (``vectorize``; see :mod:`repro.tensorir.vectorize`), and the target
  source.  Every pass is individually timed.

- :class:`KernelCache` is a process-wide LRU cache of compiled kernels keyed
  by spec, with hit/miss/eviction accounting and aggregate compile time.
  It also hosts canonicalized graph artifacts (see :meth:`canonical_graph`),
  fixing the minidgl backend's former habit of mixing canonical CSR copies
  into its kernel dict.

- Kernel identity is split into a **topology-independent** part and the
  graph binding.  :class:`UniversalSpec` is a :class:`KernelSpec` minus the
  graph fingerprint, with graph-sized leading dimensions replaced by their
  axis roles (``n_src``/``n_dst``/``m``; see
  :func:`repro.core.bindings.graph_axis_roles`).  The cache keeps, per
  universal spec, a :class:`TemplateEntry` holding everything the front and
  back passes produced that does not depend on the topology: the traced
  expression, the applied FDS stage, the vectorized program, and the
  analysis report.  Compiling the same (UDF, FDS, aggregation, target,
  options) against a *new* graph -- the sampled-block training loop -- then
  skips every pass and merely **binds** the template to the new CSR, which
  is the paper's "compile once, run on every mini-batch" amortization.
  Builtin UDFs carry a ``udf_key`` and factory FDS objects a ``cache_key``,
  so the bind path does not even re-trace the UDF to find its template.

Entry points: :func:`compile_spmm` / :func:`compile_sddmm` (used by
:func:`repro.core.api.spmm` / ``sddmm`` and therefore by every kernel
builder), :func:`get_kernel_cache` / :func:`use_kernel_cache` for cache
control, and :func:`ensure_compiled` to attach a compile record to a kernel
constructed directly.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.api import SparseMat, spmat
from repro.core.fds import FDS, default_fds, introspect_stage
from repro.graph.sparse import CSRMatrix
from repro.tensorir import expr as E
from repro.tensorir import ir as I
from repro.tensorir.cuda_codegen import _COMBINE_C, expr_to_c
from repro.tensorir.lower import (
    _attach_cache_reads,
    _find_reduce,
    _guard_vars,
    _guarded,
    _index_map,
    _replace_reduce,
    _wrap_loops,
    inline_computes,
    substitute,
)
from repro.tensorir.schedule import FuseRel, SplitRel, Stage
from repro.tensorir.simplify import simplify, simplify_stmt
from repro.tensorir.validate import validate_ir, validate_schedule

__all__ = [
    "KernelSpec",
    "UniversalSpec",
    "TemplateEntry",
    "PassTiming",
    "CompileRecord",
    "CompileContext",
    "CompilePipeline",
    "KernelCache",
    "PASS_NAMES",
    "expr_signature",
    "schedule_signature",
    "compile_spmm",
    "compile_sddmm",
    "ensure_compiled",
    "spmm_loop_nest",
    "sddmm_loop_nest",
    "spmm_cuda_source",
    "sddmm_cuda_source",
    "get_kernel_cache",
    "set_kernel_cache",
    "use_kernel_cache",
]


# ----------------------------------------------------------------------
# canonical signatures
# ----------------------------------------------------------------------

def expr_signature(out: E.Tensor, dim_tokens: dict | None = None) -> str:
    """Canonical structural signature of a traced UDF output tensor.

    Iteration variables are renamed ``%0, %1, ...`` in first-visit order, so
    two traces of the same UDF -- whose :func:`~repro.tensorir.expr.compute`
    axes carry different generated names -- yield identical signatures.
    Placeholder tensors keep their names, shapes, and dtypes: kernels bound
    to differently named or shaped inputs are operationally distinct.

    ``dim_tokens`` (placeholder name -> token) symbolizes graph-sized
    leading dimensions: a mapped placeholder's shape is signed with the
    token in place of ``shape[0]``, so two traces of the same UDF over
    differently sized topologies compare equal.  The default (``None``)
    keeps every dimension concrete.
    """
    if not isinstance(out, E.Tensor) or not isinstance(out.op, E.ComputeOp):
        raise TypeError("expr_signature expects a traced compute Tensor")
    names: dict[str, str] = {}

    def ref(name: str) -> str:
        if name not in names:
            names[name] = f"%{len(names)}"
        return names[name]

    def visit(e: E.Expr) -> str:
        if isinstance(e, E.IterVar):
            return ref(e.name)
        if isinstance(e, E.Var):
            # Template variables (src/dst/eid) have fixed, meaningful names.
            return e.name
        if isinstance(e, E.IntImm):
            return f"i{e.value}"
        if isinstance(e, E.FloatImm):
            return f"f{e.value!r}"
        if isinstance(e, E.BinOp):
            return f"({visit(e.a)}{e.op}{visit(e.b)})"
        if isinstance(e, E.Call):
            return f"{e.func}({','.join(visit(a) for a in e.args)})"
        if isinstance(e, E.Select):
            return (f"select({visit(e.cond)},{visit(e.then)},"
                    f"{visit(e.otherwise)})")
        if isinstance(e, E.Cast):
            return f"cast({visit(e.value)},{e.dtype})"
        if isinstance(e, E.Reduce):
            axes = ",".join(f"{ref(a.name)}:{a.extent}" for a in e.axes)
            return f"{e.combiner}[{axes}]({visit(e.source)})"
        if isinstance(e, E.TensorElem):
            t = e.tensor
            if isinstance(t.op, E.ComputeOp):
                head = compute_sig(t)
            else:
                shape = t.shape
                if dim_tokens and t.name in dim_tokens and shape:
                    shape = (dim_tokens[t.name],) + tuple(shape[1:])
                head = f"{t.name}:{t.dtype}{shape}"
            return f"{head}[{','.join(visit(i) for i in e.indices)}]"
        raise TypeError(f"cannot sign {type(e).__name__}")

    def compute_sig(t: E.Tensor) -> str:
        axes = ",".join(f"{ref(a.name)}:{a.extent}" for a in t.op.axis)
        return f"compute({axes})->{visit(t.op.body)}"

    return compute_sig(out)


def schedule_signature(stage: Stage) -> str:
    """Canonical signature of one stage's schedule state.

    Root data axes are renamed ``a0, a1, ...``, root reduce axes
    ``r0, r1, ...``, and derived (split/fused) axes ``t<n>`` in first-visit
    order, so structurally identical schedules built against separately
    traced UDFs compare equal.
    """
    names: dict[str, str] = {}
    for i, ax in enumerate(stage.op.axis):
        names[ax.name] = f"a{i}"
    for i, ax in enumerate(stage.op.reduce_axis):
        names[ax.name] = f"r{i}"

    def ref(ax: E.IterVar) -> str:
        if ax.name not in names:
            names[ax.name] = f"t{len(names)}"
        return names[ax.name]

    parts: list[str] = []
    for rel in stage.relations:
        if isinstance(rel, SplitRel):
            parts.append(f"split({ref(rel.parent)},{rel.factor})->"
                         f"({ref(rel.outer)},{ref(rel.inner)})")
        elif isinstance(rel, FuseRel):
            parts.append(f"fuse({ref(rel.outer)},{ref(rel.inner)})->"
                         f"{ref(rel.fused)}")
    leaves = []
    for ax in stage.leaf_iter_vars:
        ann = stage.iter_attrs.get(ax.name, {})
        tags = "".join(f"@{k}={v}" for k, v in sorted(ann.items()))
        leaves.append(f"{ref(ax)}{tags}")
    parts.append("leaves(" + ",".join(leaves) + ")")
    for tensor, scope in stage.cache_reads:
        parts.append(f"cache_read({tensor.name},{scope})")
    return ";".join(parts)


# ----------------------------------------------------------------------
# kernel identity
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class KernelSpec:
    """Canonical identity of a compiled kernel; hashable cache key."""

    #: template kind: "spmm" or "sddmm"
    template: str
    #: canonical UDF signature (:func:`expr_signature`)
    udf: str
    #: resolved aggregation name for SpMM (None for SDDMM)
    aggregation: str | None
    #: "cpu" or "gpu"
    target: str
    #: canonical FDS signature (:func:`schedule_signature`)
    fds: str
    #: content fingerprint of the bound adjacency
    graph: str
    #: ((name, shape, dtype), ...) of input placeholders, plus the output
    shapes: tuple
    #: sorted (name, repr(value)) template options
    options: tuple

    @property
    def key(self) -> "KernelSpec":
        """The spec is its own cache key (hashable, content-equal)."""
        return self

    @property
    def digest(self) -> str:
        """Short stable hex digest, for display and logs."""
        import hashlib

        return hashlib.sha1(repr(self).encode()).hexdigest()[:12]

    def universal(self) -> "UniversalSpec":
        """The topology-independent part of this spec (everything but the
        graph fingerprint)."""
        return UniversalSpec(
            template=self.template, udf=self.udf,
            aggregation=self.aggregation, target=self.target, fds=self.fds,
            shapes=self.shapes, options=self.options)


@dataclass(frozen=True)
class UniversalSpec:
    """A :class:`KernelSpec` minus the graph binding.

    The ``udf`` and ``shapes`` fields carry graph-axis *roles*
    (``n_src``/``n_dst``/``m``) in place of concrete leading dimensions --
    see :meth:`CompileContext.make_spec` -- so the same UDF/FDS/target
    request over two different topologies yields the *same* universal spec.
    This is the key the cache's template namespace is indexed by.
    """

    template: str
    udf: str
    aggregation: str | None
    target: str
    fds: str
    shapes: tuple
    options: tuple

    def bind(self, graph_fingerprint: str) -> KernelSpec:
        """The full spec of this template bound to one topology."""
        return KernelSpec(
            template=self.template, udf=self.udf,
            aggregation=self.aggregation, target=self.target, fds=self.fds,
            graph=graph_fingerprint, shapes=self.shapes,
            options=self.options)


@dataclass
class TemplateEntry:
    """Everything a compiled kernel owns that does not depend on topology.

    Produced once per :class:`UniversalSpec` by a full pipeline run and kept
    in the cache's template namespace; binding it to a new graph
    (:meth:`CompilePipeline._bind`) constructs a runnable kernel without
    re-running any compile pass.  The traced expression, stage, and
    vectorized program are shared read-only across every kernel bound from
    this entry.
    """

    universal: UniversalSpec
    src_var: E.Var
    dst_var: E.Var
    eid_var: E.Var
    #: the traced UDF output (placeholder leading dims are those of the
    #: topology the template was first compiled against; bound kernels
    #: validate leading dims against their own graph via ``roles``)
    out: E.Tensor
    stage: Stage
    fds_info: object
    #: compiled batched-UDF program, or None (tree-walk fallback)
    vector_program: object | None
    #: dataflow analysis report of the original lowering
    analysis: object | None
    #: placeholder name -> graph-axis role (n_src / n_dst / n_max / m)
    roles: dict


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock seconds spent in one named compile pass."""

    name: str
    seconds: float


@dataclass
class CompileRecord:
    """The artifacts and per-pass timings of one pipeline run."""

    spec: KernelSpec | None
    timings: tuple[PassTiming, ...]
    #: "ir" -> loop-nest Stmt; "source" -> target source text;
    #: "vector_program" -> compiled batched-UDF program (or None)
    artifacts: dict = field(default_factory=dict)
    #: cumulative runtime counters of the kernel this record belongs to
    #: (per-chunk eval/aggregate seconds, bytes moved); shared with the
    #: kernel's ``exec_stats`` attribute
    exec_stats: object | None = None

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    def timings_dict(self) -> dict[str, float]:
        return {t.name: t.seconds for t in self.timings}


class CompileContext:
    """Mutable state threaded through the pipeline's passes."""

    def __init__(self, template: str, A: SparseMat, udf: Callable,
                 aggregation: str | None, target: str, fds_obj: FDS,
                 options: dict):
        self.template = template
        self.A = A
        self.udf = udf
        self.aggregation = aggregation
        self.target = target
        self.fds_obj = fds_obj
        self.options = options
        # filled by passes
        self.src_var = self.dst_var = self.eid_var = None
        self.out: E.Tensor | None = None
        self.stage: Stage | None = None
        self.fds_info = None
        self.spec: KernelSpec | None = None
        self.kernel = None
        self.artifacts: dict = {}
        self.timings: list[PassTiming] = []
        #: placeholder -> graph-axis role, derived in :meth:`make_spec`
        self.roles: dict | None = None
        #: set only on the template-bind path: tells the constructed kernel
        #: to validate graph-sized leading dims against its *own* topology
        #: instead of the template's placeholder shapes
        self.bound_roles: dict | None = None
        #: vectorized program inherited from a template (bind path)
        self.bound_program = None

    @classmethod
    def from_kernel(cls, kernel) -> "CompileContext":
        """Context for a kernel constructed directly (not via the cache)."""
        from repro.core.spmm import GeneralizedSpMM

        is_spmm = isinstance(kernel, GeneralizedSpMM)
        ctx = cls(
            template="spmm" if is_spmm else "sddmm",
            A=kernel.A,
            udf=kernel.msgfunc if is_spmm else kernel.edgefunc,
            aggregation=kernel.aggregation if is_spmm else None,
            target=kernel.target,
            fds_obj=kernel.fds,
            options={},
        )
        ctx.src_var, ctx.dst_var = kernel.src_var, kernel.dst_var
        ctx.eid_var = kernel.eid_var
        ctx.out = kernel.msg if is_spmm else kernel.edge_out
        ctx.stage = kernel.fds_stage()
        ctx.fds_info = kernel.fds_info
        ctx.kernel = kernel
        return ctx

    def template_key(self):
        """Hashable pre-trace identity of the topology-independent kernel,
        or None when the UDF/FDS carry no declared identity.

        Built from the builtin UDF's ``udf_key`` and the FDS factory's
        ``cache_key``; available *before* the front passes run, so a
        template hit skips tracing entirely.  Hand-written UDFs or FDS
        functions without keys fall back to the trace-then-match path.
        """
        udf_key = getattr(self.udf, "udf_key", None)
        fds_key = getattr(self.fds_obj, "cache_key", None)
        if udf_key is None or fds_key is None:
            return None
        options = tuple(sorted(
            (k, repr(v)) for k, v in self.options.items()))
        return (self.template, udf_key, self.aggregation, self.target,
                fds_key, options)

    def make_spec(self) -> KernelSpec:
        from repro.core.bindings import graph_axis_roles

        self.roles = graph_axis_roles(self.out)

        def sym(t: E.Tensor) -> tuple:
            role = self.roles.get(t.name)
            if role is None or not t.shape:
                return tuple(t.shape)
            return (role,) + tuple(t.shape[1:])

        shapes = tuple(
            (t.name, sym(t), t.dtype) for t in self.out.op.input_tensors()
        ) + (("out", self.out.shape, self.out.dtype),)
        options = tuple(sorted(
            (k, repr(v)) for k, v in self.options.items()))
        return KernelSpec(
            template=self.template,
            udf=expr_signature(self.out, dim_tokens=self.roles),
            aggregation=self.aggregation,
            target=self.target,
            fds=schedule_signature(self.stage),
            graph=self.A.fingerprint(),
            shapes=shapes,
            options=options,
        )


# ----------------------------------------------------------------------
# passes
# ----------------------------------------------------------------------

def _pass_build_expr(ctx: CompileContext) -> None:
    """Trace the UDF into a tensor expression."""
    src, dst, eid = E.Var("src"), E.Var("dst"), E.Var("eid")
    out = ctx.udf(src, dst, eid)
    if not isinstance(out, E.Tensor) or not isinstance(out.op, E.ComputeOp):
        fn = "msgfunc" if ctx.template == "spmm" else "edgefunc"
        raise TypeError(f"{fn} must return a tensorir compute Tensor")
    if ctx.template == "spmm" and out.ndim < 1:
        raise ValueError("message must have at least one feature dimension")
    ctx.src_var, ctx.dst_var, ctx.eid_var = src, dst, eid
    ctx.out = out


def _pass_fuse_fds(ctx: CompileContext) -> None:
    """Apply the feature-dimension schedule and introspect its decisions."""
    sched = ctx.fds_obj.apply(ctx.out)
    stage = sched[ctx.out]
    validate_schedule(stage, target=ctx.target)
    ctx.stage = stage
    ctx.fds_info = introspect_stage(ctx.out, stage)


def _pass_lower(ctx: CompileContext) -> None:
    """Resolve template parameters and build the fused loop-nest IR."""
    if ctx.kernel is None:
        ctx.kernel = _construct_kernel(ctx)
    if ctx.template == "spmm":
        ctx.artifacts["ir"] = spmm_loop_nest(ctx.kernel)
    else:
        ctx.artifacts["ir"] = sddmm_loop_nest(ctx.kernel)


def _pass_validate(ctx: CompileContext) -> None:
    """Structurally validate the lowered loop nest."""
    validate_ir(ctx.artifacts["ir"])


def _pass_analyze(ctx: CompileContext) -> None:
    """Run the dataflow analyses (races, bounds, footprints) over the
    lowered loop nest; in strict mode, error diagnostics fail the compile."""
    from repro.tensorir.analysis import (AnalysisError, analyze_ir,
                                         strict_enabled)

    report = analyze_ir(ctx.artifacts["ir"], target=ctx.target)
    ctx.artifacts["analysis"] = report
    if strict_enabled() and report.has_errors:
        raise AnalysisError(report)


def _pass_simplify(ctx: CompileContext) -> None:
    """Fold constants and normalize index arithmetic in the loop nest."""
    ctx.artifacts["ir"] = simplify_stmt(ctx.artifacts["ir"])


def _pass_vectorize(ctx: CompileContext) -> None:
    """Compile the batched UDF into a straight-line vectorized program.

    The program is what the CPU templates execute per edge/vertex chunk
    (:mod:`repro.tensorir.vectorize`); bodies the vectorizer cannot handle
    fall back to the tree-walk evaluator (artifact stays ``None``)."""
    from repro.tensorir.vectorize import VectorizeError, compile_batched

    try:
        prog = compile_batched(ctx.out)
    except VectorizeError:
        prog = None
    ctx.artifacts["vector_program"] = prog
    if ctx.kernel is not None:
        ctx.kernel._vector_program = prog


def _pass_verify_plan(ctx: CompileContext) -> None:
    """Statically verify the kernel's execution plan (FG006-FG010).

    The loop-nest analyzer above judges the lowered IR; this pass judges
    what the runtime actually executes -- the chunked, strategy-sharded
    :class:`~repro.runtime.plan.ExecutionPlan` the kernel lowers to
    (:mod:`repro.runtime.verify`): shard disjointness, determinism class,
    buffer lifetimes, shared-memory release, gather bounds.  Runs after
    ``vectorize`` so the plan carries the compiled program (whose ``out=``
    retirement FG008 scans) without compiling it twice.  Strict mode
    fails the compile on errors, exactly like ``analyze``.
    """
    from repro.runtime.verify import verify_kernel
    from repro.tensorir.analysis import AnalysisError, strict_enabled

    report = verify_kernel(ctx.kernel)
    ctx.artifacts["plan_verify"] = report
    if strict_enabled() and report.has_errors:
        raise AnalysisError(report)


def _pass_codegen(ctx: CompileContext) -> None:
    """Emit target source: CUDA C on gpu, pretty-printed IR on cpu."""
    if ctx.target == "gpu":
        if ctx.template == "spmm":
            ctx.artifacts["source"] = spmm_cuda_source(ctx.kernel)
        else:
            ctx.artifacts["source"] = sddmm_cuda_source(ctx.kernel)
    else:
        ctx.artifacts["source"] = I.stmt_to_str(ctx.artifacts["ir"])


def _construct_kernel(ctx: CompileContext):
    from repro.core.sddmm import GeneralizedSDDMM
    from repro.core.spmm import GeneralizedSpMM

    if ctx.template == "spmm":
        return GeneralizedSpMM(
            ctx.A, ctx.udf, aggregation=ctx.aggregation, target=ctx.target,
            fds=ctx.fds_obj, _compiled=ctx, **ctx.options)
    return GeneralizedSDDMM(
        ctx.A, ctx.udf, target=ctx.target, fds=ctx.fds_obj, _compiled=ctx,
        **ctx.options)


#: pipeline pass order; the first two form the spec, the rest run on a miss
PASS_NAMES = ("build_expr", "fuse_fds", "lower", "validate", "analyze",
              "simplify", "vectorize", "verify_plan", "codegen")

_FRONT_PASSES = frozenset(("build_expr", "fuse_fds"))

_DEFAULT_PASSES: tuple[tuple[str, Callable], ...] = (
    ("build_expr", _pass_build_expr),
    ("fuse_fds", _pass_fuse_fds),
    ("lower", _pass_lower),
    ("validate", _pass_validate),
    ("analyze", _pass_analyze),
    ("simplify", _pass_simplify),
    ("vectorize", _pass_vectorize),
    ("verify_plan", _pass_verify_plan),
    ("codegen", _pass_codegen),
)


class CompilePipeline:
    """An ordered sequence of named compile passes.

    The default pipeline is ``build_expr -> fuse_fds -> lower -> validate ->
    analyze -> simplify -> vectorize -> verify_plan -> codegen``.  The
    *front* passes
    (``build_expr``, ``fuse_fds``) always run -- they are what forms the
    :class:`KernelSpec` -- while the *back* passes run only on a cache miss.
    """

    def __init__(self, passes=None):
        self.passes: list[tuple[str, Callable]] = (
            list(passes) if passes is not None else list(_DEFAULT_PASSES))

    @property
    def pass_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.passes)

    def _run(self, ctx: CompileContext, subset) -> None:
        for name, fn in subset:
            t0 = time.perf_counter()
            fn(ctx)
            ctx.timings.append(PassTiming(name, time.perf_counter() - t0))

    def run_front(self, ctx: CompileContext) -> None:
        self._run(ctx, [(n, f) for n, f in self.passes if n in _FRONT_PASSES])

    def run_back(self, ctx: CompileContext) -> None:
        self._run(ctx, [(n, f) for n, f in self.passes
                        if n not in _FRONT_PASSES])

    def compile(self, ctx: CompileContext, cache: "KernelCache"):
        """Run the pipeline against ``cache``; return the compiled kernel.

        Resolution order, cheapest first:

        1. *prekey* -- the UDF/FDS declared identities name a cached
           :class:`TemplateEntry` without tracing; the bound (template,
           graph) spec is then looked up and, on a kernel miss, bound.
        2. *trace* -- the front passes run and the exact spec is looked up.
        3. *template match* -- a trace that missed the kernel cache may
           still match a template compiled against another topology; bind.
        4. *full compile* -- back passes run; the kernel and its new
           template entry are cached.
        """
        prekey = ctx.template_key()
        if prekey is not None:
            entry = cache.template_for_prekey(prekey)
            if entry is not None:
                spec = entry.universal.bind(ctx.A.fingerprint())
                cached = cache.get(spec)
                if cached is not None:
                    return cached
                return self._bind(ctx, entry, spec, cache)
        self.run_front(ctx)
        ctx.spec = ctx.make_spec()
        cached = cache.get(ctx.spec)
        if cached is not None:
            cache.note_timings(ctx.timings)
            return cached
        entry = cache.get_template(ctx.spec.universal())
        if entry is not None:
            return self._bind(ctx, entry, ctx.spec, cache)
        self.run_back(ctx)
        record = CompileRecord(spec=ctx.spec, timings=tuple(ctx.timings),
                               artifacts=dict(ctx.artifacts),
                               exec_stats=getattr(ctx.kernel, "exec_stats",
                                                  None))
        ctx.kernel._compile_record = record
        cache.put(ctx.spec, ctx.kernel, record)
        cache.put_template(
            ctx.spec.universal(),
            TemplateEntry(
                universal=ctx.spec.universal(),
                src_var=ctx.src_var, dst_var=ctx.dst_var, eid_var=ctx.eid_var,
                out=ctx.out, stage=ctx.stage, fds_info=ctx.fds_info,
                vector_program=ctx.artifacts.get("vector_program"),
                analysis=ctx.artifacts.get("analysis"),
                roles=dict(ctx.roles or {})),
            prekey=prekey)
        cache.note_timings(ctx.timings)
        return ctx.kernel

    def _bind(self, ctx: CompileContext, entry: TemplateEntry,
              spec: KernelSpec, cache: "KernelCache"):
        """Bind a cached template to ``ctx``'s topology: construct the
        kernel around the new CSR with zero compile passes.

        The kernel is built from the *entry's* traced expression and stage
        even when ``ctx`` ran the front passes itself (trace-then-match
        route): the entry's vectorized program is keyed by the entry trace's
        generated axis names, so mixing it with a fresh trace would make
        per-tile ``axis_ranges`` lookups miss silently.
        """
        t0 = time.perf_counter()
        ctx.src_var, ctx.dst_var = entry.src_var, entry.dst_var
        ctx.eid_var = entry.eid_var
        ctx.out = entry.out
        ctx.stage = entry.stage
        ctx.fds_info = entry.fds_info
        ctx.spec = spec
        ctx.bound_roles = dict(entry.roles)
        ctx.bound_program = entry.vector_program
        kernel = _construct_kernel(ctx)
        kernel._vector_program = entry.vector_program
        ctx.timings.append(PassTiming("bind", time.perf_counter() - t0))
        record = CompileRecord(
            spec=spec, timings=tuple(ctx.timings),
            artifacts={"vector_program": entry.vector_program,
                       "analysis": entry.analysis},
            exec_stats=getattr(kernel, "exec_stats", None))
        kernel._compile_record = record
        cache.put(spec, kernel, record, bound=True)
        cache.note_timings(ctx.timings)
        return kernel


_DEFAULT_PIPELINE = CompilePipeline()


def default_pipeline() -> CompilePipeline:
    """The shared default pass pipeline."""
    return _DEFAULT_PIPELINE


# ----------------------------------------------------------------------
# the process-wide kernel cache
# ----------------------------------------------------------------------

class KernelCache:
    """LRU cache of compiled kernels keyed by :class:`KernelSpec`.

    One instance (see :func:`get_kernel_cache`) is shared by every compile
    call site -- ``FeatGraphBackend``, the minidgl DGL backend, the tuners,
    the kernel builders -- so a given (graph, UDF, FDS, target, shapes)
    kernel is lowered exactly once per process.  Also hosts canonicalized
    graph artifacts in a separate namespace (:meth:`canonical_graph`).
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._lock = threading.RLock()
        self._kernels: "OrderedDict[KernelSpec, object]" = OrderedDict()
        self._templates: "OrderedDict[UniversalSpec, TemplateEntry]" = \
            OrderedDict()
        self._prekeys: dict = {}
        self._fused: "OrderedDict[tuple, object]" = OrderedDict()
        self._graphs: "OrderedDict[str, CSRMatrix]" = OrderedDict()
        self.max_graph_entries = max(self.max_entries, 128)
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._pipeline_runs = 0
        self._compile_seconds = 0.0
        self._binds = 0
        self._template_hits = 0
        self._template_misses = 0
        self._template_evictions = 0
        self._fused_template_hits = 0
        self._fused_template_misses = 0
        self._fused_binds = 0
        self._fused_compiles = 0
        self._pass_counts: dict[str, int] = {}
        self._pass_seconds: dict[str, float] = {}

    # -- kernel entries -------------------------------------------------
    def get(self, spec: KernelSpec):
        """Look up a compiled kernel; counts a hit or a miss."""
        with self._lock:
            kernel = self._kernels.get(spec)
            if kernel is not None:
                self._kernels.move_to_end(spec)
                self._hits += 1
                return kernel
            self._misses += 1
            return None

    def peek(self, spec: KernelSpec):
        """Look up without touching LRU order or accounting."""
        with self._lock:
            return self._kernels.get(spec)

    def put(self, spec: KernelSpec, kernel,
            record: CompileRecord | None = None, bound: bool = False):
        """Insert a compiled kernel, evicting LRU entries if full.

        ``bound`` marks kernels produced by binding a cached template to a
        new topology (no pipeline run): they count toward ``binds`` instead
        of ``pipeline_runs``.
        """
        with self._lock:
            self._kernels[spec] = kernel
            self._kernels.move_to_end(spec)
            if bound:
                self._binds += 1
            else:
                self._pipeline_runs += 1
            if record is not None:
                self._compile_seconds += record.total_seconds
            while len(self._kernels) > self.max_entries:
                self._kernels.popitem(last=False)
                self._evictions += 1

    # -- template entries (topology-independent) ------------------------
    def template_for_prekey(self, prekey):
        """Resolve a pre-trace template key (udf_key/FDS cache_key) to its
        :class:`TemplateEntry`, or None."""
        with self._lock:
            universal = self._prekeys.get(prekey)
            if universal is None:
                self._template_misses += 1
                return None
            return self._get_template_locked(universal)

    def get_template(self, universal: "UniversalSpec"):
        """Look up a template by its universal spec; counts hit/miss."""
        with self._lock:
            return self._get_template_locked(universal)

    def _get_template_locked(self, universal):
        entry = self._templates.get(universal)
        if entry is not None:
            self._templates.move_to_end(universal)
            self._template_hits += 1
            return entry
        self._template_misses += 1
        return None

    def put_template(self, universal: "UniversalSpec", entry: "TemplateEntry",
                     prekey=None) -> None:
        """Insert a template entry, registering its pre-trace key.

        The template namespace shares ``max_entries`` with the kernel
        namespace and evicts LRU-first (own ``template_evictions`` counter),
        so a spec whose kernel was evicted does not silently keep serving
        binds forever.
        """
        with self._lock:
            self._templates[universal] = entry
            self._templates.move_to_end(universal)
            if prekey is not None:
                self._prekeys[prekey] = universal
            while len(self._templates) > self.max_entries:
                dropped, _ = self._templates.popitem(last=False)
                self._template_evictions += 1
                for key in [k for k, v in self._prekeys.items()
                            if v == dropped]:
                    del self._prekeys[key]

    # -- fused templates (cross-kernel chains) ---------------------------
    def get_fused_template(self, key):
        """Look up a fused-chain template (:mod:`repro.core.fusion`) by its
        topology-independent key; counts a fused hit or miss.

        Fused chains get their own namespace and ``fused_*`` counters so
        benchmarks and CI smoke can tell fused-template hits apart from
        single-kernel template hits."""
        with self._lock:
            entry = self._fused.get(key)
            if entry is not None:
                self._fused.move_to_end(key)
                self._fused_template_hits += 1
                return entry
            self._fused_template_misses += 1
            return None

    def put_fused_template(self, key, entry) -> None:
        """Insert a fused-chain template (same LRU budget as templates)."""
        with self._lock:
            self._fused[key] = entry
            self._fused.move_to_end(key)
            while len(self._fused) > self.max_entries:
                self._fused.popitem(last=False)

    def note_fused(self, bound: bool) -> None:
        """Record one fused-kernel construction: a cheap per-topology bind
        of a cached fused template, or a full fused-pipeline compile."""
        with self._lock:
            if bound:
                self._fused_binds += 1
            else:
                self._fused_compiles += 1

    def note_timings(self, timings) -> None:
        """Aggregate per-pass run counts and seconds across compiles.

        This is the observable ledger of compile *work*: a mini-batch loop
        that truly reuses templates shows zero growth in the
        ``build_expr``/``fuse_fds``/``lower``/``vectorize`` counters after
        its first batch (only ``bind`` grows).
        """
        with self._lock:
            for t in timings:
                self._pass_counts[t.name] = \
                    self._pass_counts.get(t.name, 0) + 1
                self._pass_seconds[t.name] = \
                    self._pass_seconds.get(t.name, 0.0) + t.seconds

    def entries(self) -> list[KernelSpec]:
        """The cached specs, least-recently used first."""
        with self._lock:
            return list(self._kernels.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)

    def __contains__(self, spec: KernelSpec) -> bool:
        with self._lock:
            return spec in self._kernels

    # -- graph artifacts ------------------------------------------------
    def canonical_graph(self, adj: CSRMatrix) -> CSRMatrix:
        """A CSR copy of ``adj`` with ``edge_ids = arange``, cached by the
        *original* adjacency's fingerprint.

        Per-edge tensors in minidgl are CSR-position ordered, so its
        kernels need edge ids in CSR order regardless of insertion order.
        Keeping these artifacts in their own namespace (instead of the
        kernel dict) fixes the mixed-key-space bug in the minidgl backend.
        """
        fp = adj.fingerprint()
        with self._lock:
            canon = self._graphs.get(fp)
            if canon is None:
                if np.array_equal(adj.edge_ids, np.arange(adj.nnz)):
                    canon = adj
                else:
                    canon = CSRMatrix(adj.shape, adj.indptr, adj.indices)
                self._graphs[fp] = canon
            # Bounded LRU: sampled-block training creates a fresh topology
            # per batch, and an unbounded dict would leak one CSR per block
            # for the life of the process.
            self._graphs.move_to_end(fp)
            while len(self._graphs) > self.max_graph_entries:
                self._graphs.popitem(last=False)
            return canon

    def invalidate_graph(self, fingerprint: str) -> int:
        """Drop every kernel and graph artifact tied to ``fingerprint``.

        Call after mutating/replacing a graph so stale kernels compiled for
        the old topology cannot be served.  Returns the number of kernel
        entries removed.  Kernels compiled against the canonicalized copy of
        the fingerprinted graph are removed too.  Template entries survive:
        they are topology-independent, so re-requesting a kernel for the
        (new or old) graph re-*binds* rather than re-compiles.
        """
        with self._lock:
            targets = {fingerprint}
            canon = self._graphs.pop(fingerprint, None)
            if canon is not None:
                targets.add(canon.fingerprint())
            for key in [k for k, v in self._graphs.items()
                        if v.fingerprint() in targets]:
                self._graphs.pop(key)
            removed = 0
            for spec in [s for s in self._kernels if s.graph in targets]:
                del self._kernels[spec]
                removed += 1
            return removed

    # -- accounting -----------------------------------------------------
    def stats(self) -> dict:
        """Hit/miss/eviction counts, entry count, and compile time."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._kernels),
                "graph_artifacts": len(self._graphs),
                "pipeline_runs": self._pipeline_runs,
                "compile_seconds": self._compile_seconds,
                "hit_rate": self._hits / lookups if lookups else 0.0,
                "binds": self._binds,
                "templates": len(self._templates),
                "template_hits": self._template_hits,
                "template_misses": self._template_misses,
                "template_evictions": self._template_evictions,
                "fused_templates": len(self._fused),
                "fused_template_hits": self._fused_template_hits,
                "fused_template_misses": self._fused_template_misses,
                "fused_binds": self._fused_binds,
                "fused_compiles": self._fused_compiles,
                "pass_counts": dict(self._pass_counts),
                "pass_seconds": dict(self._pass_seconds),
            }

    def reset_stats(self) -> None:
        """Zero the counters without dropping cached entries."""
        with self._lock:
            self._hits = self._misses = self._evictions = 0
            self._pipeline_runs = 0
            self._compile_seconds = 0.0
            self._binds = 0
            self._template_hits = self._template_misses = 0
            self._template_evictions = 0
            self._fused_template_hits = self._fused_template_misses = 0
            self._fused_binds = self._fused_compiles = 0
            self._pass_counts = {}
            self._pass_seconds = {}

    def clear(self) -> None:
        """Drop every entry and artifact and zero the counters."""
        with self._lock:
            self._kernels.clear()
            self._templates.clear()
            self._prekeys.clear()
            self._fused.clear()
            self._graphs.clear()
            self.reset_stats()

    def __repr__(self):
        s = self.stats()
        return (f"KernelCache(entries={s['entries']}, hits={s['hits']}, "
                f"misses={s['misses']}, evictions={s['evictions']})")


_process_cache = KernelCache()
_cache_lock = threading.Lock()


def get_kernel_cache() -> KernelCache:
    """The process-wide kernel cache shared by all compile call sites."""
    return _process_cache


def set_kernel_cache(cache: KernelCache) -> KernelCache:
    """Replace the process-wide cache; returns the previous one."""
    global _process_cache
    with _cache_lock:
        old = _process_cache
        _process_cache = cache
        return old


@contextmanager
def use_kernel_cache(cache: KernelCache):
    """Temporarily install ``cache`` as the process-wide kernel cache."""
    old = set_kernel_cache(cache)
    try:
        yield cache
    finally:
        set_kernel_cache(old)


# ----------------------------------------------------------------------
# lowering: template loop nests
# ----------------------------------------------------------------------

def spmm_loop_nest(kernel) -> I.Stmt:
    """The generalized-SpMM fused loop nest for one compiled kernel.

    Feature-tile / graph-partition / row / edge traversal loops with the
    FDS-scheduled UDF inlined at the innermost level and the aggregation as
    a combine-store -- the paper's "directly constructing and manipulating
    the IR" (Sec. IV-A) made visible.
    """
    n_dst, nnz = kernel.A.num_dst, kernel.A.nnz
    indices_t = E.placeholder((max(nnz, 1),), name="A_indices", dtype="int64")
    eids_t = E.placeholder((max(nnz, 1),), name="A_edge_ids", dtype="int64")
    out_buf = I.BufferRef("out", (n_dst,) + kernel.msg_shape, "float32")

    tile_iv = E.IterVar((0, kernel.num_feature_partitions), name="f_tile")
    part_iv = E.IterVar((0, kernel.num_graph_partitions), name="partition")
    row_iv = E.IterVar((0, n_dst), name="v")
    edge_iv = E.IterVar((0, max(nnz, 1)), name="e")

    stage = kernel.fds_stage()
    body = inline_computes(kernel.msg.op.body)
    index_values, guards = _index_map(stage)
    mapping = dict(index_values)
    mapping[kernel.src_var.name] = indices_t[edge_iv]
    mapping[kernel.dst_var.name] = row_iv
    mapping[kernel.eid_var.name] = eids_t[edge_iv]
    value = substitute(body, mapping)
    out_indices = [row_iv] + [index_values[ax.name]
                              for ax in kernel.msg.op.axis]
    agg = kernel.aggregation if kernel.aggregation != "mean" else "sum"
    store = I.Store(out_buf, value, out_indices, combiner=agg)
    data_leaves = [ax for ax in stage.leaf_iter_vars
                   if ax.kind == E.IterVar.DATA]
    # Only data-leaf guards apply: reduce-axis splits stay inline in the
    # Reduce node, which iterates the exact original domain.
    wrapped = {ax.name for ax in data_leaves}
    kept = [g for g in guards if _guard_vars(g) <= wrapped]
    nest = _wrap_loops(_guarded(store, kept), data_leaves, stage)
    nest = I.AttrStmt("edge_range", "A.indptr[v] : A.indptr[v+1]",
                      I.For(edge_iv, max(nnz, 1), nest))
    nest = I.For(row_iv, n_dst, nest,
                 kind="block.x" if kernel.target == "gpu" else I.For.SERIAL)
    nest = I.AttrStmt("column_range",
                      "sources of this 1D partition (Fig. 6)",
                      I.For(part_iv, kernel.num_graph_partitions, nest))
    return _attach_cache_reads(
        I.For(tile_iv, kernel.num_feature_partitions, nest), stage)


def sddmm_loop_nest(kernel) -> I.Stmt:
    """The generalized-SDDMM fused loop nest for one compiled kernel.

    Feature-tile and edge-traversal loops around the inlined edge function;
    the traversal order attribute records the Hilbert-curve optimization
    (CPU, Sec. III-C1) or plain CSR order, and on GPU the edge loop carries
    the Fig. 7b block binding.
    """
    m = kernel.A.nnz
    src_t = E.placeholder((max(m, 1),), name="A_src", dtype="int64")
    dst_t = E.placeholder((max(m, 1),), name="A_dst", dtype="int64")
    eids_t = E.placeholder((max(m, 1),), name="A_edge_ids", dtype="int64")
    out_buf = I.BufferRef("out", (m,) + kernel.out_shape, "float32")

    tile_iv = E.IterVar((0, kernel.num_feature_partitions), name="f_tile")
    edge_iv = E.IterVar((0, max(m, 1)), name="e")

    stage = kernel.fds_stage()
    body = inline_computes(kernel.edge_out.op.body)
    index_values, guards = _index_map(stage)
    mapping = dict(index_values)
    mapping[kernel.src_var.name] = src_t[edge_iv]
    mapping[kernel.dst_var.name] = dst_t[edge_iv]
    mapping[kernel.eid_var.name] = eids_t[edge_iv]
    value = substitute(body, mapping)
    out_indices = [eids_t[edge_iv]] + [index_values[ax.name]
                                       for ax in kernel.edge_out.op.axis]
    store = I.Store(out_buf, value, out_indices)
    data_leaves = [ax for ax in stage.leaf_iter_vars
                   if ax.kind == E.IterVar.DATA]
    wrapped = {ax.name for ax in data_leaves}
    kept = [g for g in guards if _guard_vars(g) <= wrapped]
    nest = _wrap_loops(_guarded(store, kept), data_leaves, stage)
    traversal = ("hilbert(dst, src) order (Sec. III-C1)" if kernel.hilbert
                 else "CSR edge order")
    nest = I.AttrStmt("edge_traversal", traversal, nest)
    nest = I.For(edge_iv, max(m, 1), nest,
                 kind="block.x" if kernel.target == "gpu" else I.For.SERIAL)
    return _attach_cache_reads(
        I.For(tile_iv, kernel.num_feature_partitions, nest), stage)


# ----------------------------------------------------------------------
# codegen: CUDA source emission
# ----------------------------------------------------------------------

def spmm_cuda_source(kernel, name: str = "fused_spmm") -> str:
    """CUDA C source of a fused generalized-SpMM kernel.

    The Fig. 7a parallelization: one destination row per block, the feature
    dimension across the block's threads, the UDF inlined into the edge
    loop and the aggregation as a combine-update.  Emitted for inspection
    (no GPU here); structure is covered by tests.
    """
    f = kernel.feature_len
    body = inline_computes(kernel.msg.op.body)
    # symbolic loads through the CSR arrays
    src_c, eid_c = "A_indices[e]", "A_edge_ids[e]"
    mapping = {kernel.src_var.name: E.Var("__src", "int64"),
               kernel.dst_var.name: E.Var("v", "int64"),
               kernel.eid_var.name: E.Var("__eid", "int64")}
    for pos, ax in enumerate(kernel.msg.op.axis):
        mapping[ax.name] = E.Var(f"i{pos}", "int64")
    body = substitute(body, mapping)
    red = _find_reduce(body)

    lines = [
        f'extern "C" __global__ void {name}(',
        "    float* __restrict__ out,",
        "    const long* __restrict__ A_indptr,",
        "    const long* __restrict__ A_indices,",
        "    const long* __restrict__ A_edge_ids,",
    ]
    for t in kernel.msg.op.input_tensors():
        ctype = "const long*" if t.dtype.startswith("int") else "const float*"
        lines.append(f"    {ctype} __restrict__ {t.name},")
    lines[-1] = lines[-1].rstrip(",") + ") {"
    lines.append("  int v = blockIdx.x;")
    lines.append(f"  if (v >= {kernel.A.num_dst}) return;")
    # feature axes: thread-bound axis from the FDS, loops otherwise
    thread_axis = kernel.fds_info.bindings.get("thread.x")
    indent = "  "
    closes = []
    for pos, ax in enumerate(kernel.msg.op.axis):
        if pos == thread_axis:
            lines.append(f"{indent}int i{pos} = threadIdx.x;")
            lines.append(f"{indent}if (i{pos} >= {ax.extent}) return;")
        else:
            lines.append(f"{indent}for (int i{pos} = 0; i{pos} < "
                         f"{ax.extent}; ++i{pos}) {{")
            closes.append(indent + "}")
            indent += "  "
    lines.append(f"{indent}for (long e = A_indptr[v]; "
                 "e < A_indptr[v + 1]; ++e) {")
    inner = indent + "  "
    lines.append(f"{inner}long __src = {src_c};")
    lines.append(f"{inner}long __eid = {eid_c};")
    out_idx = " + ".join(
        [f"v * {f}"]
        + [f"i{p} * {int(np.prod(kernel.msg_shape[p + 1:]))}"
           if int(np.prod(kernel.msg_shape[p + 1:])) != 1 else f"i{p}"
           for p in range(len(kernel.msg_shape))])
    agg = kernel.aggregation if kernel.aggregation != "mean" else "sum"
    if red is None:
        value = expr_to_c(simplify(body))
    else:
        kvar = red.axes[0]
        ident = {float("inf"): "INFINITY",
                 float("-inf"): "-INFINITY"}.get(red.identity,
                                                 f"{red.identity!r}f")
        lines.append(f"{inner}float _m = {ident};")
        lines.append(f"{inner}for (int {kvar.name} = 0; {kvar.name} < "
                     f"{kvar.extent}; ++{kvar.name}) {{")
        comb = _COMBINE_C[red.combiner].format(
            t="_m", v=expr_to_c(simplify(red.source)))
        lines.append(f"{inner}  {comb}")
        lines.append(f"{inner}}}")
        value = expr_to_c(simplify(_replace_reduce(body,
                                                   E.Var("_m", "float32"))))
    lines.append(inner + _COMBINE_C[agg].format(t=f"out[{out_idx}]", v=value))
    lines.append(indent + "}")
    lines.extend(reversed(closes))
    lines.append("}")
    return "\n".join(lines) + "\n"


def sddmm_cuda_source(kernel, name: str = "fused_sddmm",
                      threads_per_block: int = 256) -> str:
    """CUDA C source of a fused generalized-SDDMM kernel.

    The Fig. 7b parallelization: one edge per block; when the FDS asked for
    tree reduction, the block's threads cooperate on the reduce axis through
    shared memory (Harris [34]); otherwise the edge function runs on thread
    0.  Emitted for inspection; structure covered by tests.
    """
    m = kernel.A.nnz
    w = kernel.out_width
    body = inline_computes(kernel.edge_out.op.body)
    mapping = {kernel.src_var.name: E.Var("__src", "int64"),
               kernel.dst_var.name: E.Var("__dst", "int64"),
               kernel.eid_var.name: E.Var("__eid", "int64")}
    for pos, ax in enumerate(kernel.edge_out.op.axis):
        mapping[ax.name] = E.Var(f"i{pos}", "int64")
    body = substitute(body, mapping)
    red = _find_reduce(body)

    lines = [
        f'extern "C" __global__ void {name}(',
        "    float* __restrict__ out,",
        "    const long* __restrict__ A_src,",
        "    const long* __restrict__ A_dst,",
        "    const long* __restrict__ A_edge_ids,",
    ]
    for t in kernel.edge_out.op.input_tensors():
        ctype = "const long*" if t.dtype.startswith("int") else "const float*"
        lines.append(f"    {ctype} __restrict__ {t.name},")
    lines[-1] = lines[-1].rstrip(",") + ") {"
    if kernel.tree_reduce and red is not None:
        lines.append(f"  __shared__ float _reduce_buf[{threads_per_block}];")
    lines.append("  long e = blockIdx.x;")
    lines.append(f"  if (e >= {m}) return;")
    lines.append("  long __src = A_src[e];")
    lines.append("  long __dst = A_dst[e];")
    lines.append("  long __eid = A_edge_ids[e];")
    indent = "  "
    closes = []
    for pos, ax in enumerate(kernel.edge_out.op.axis):
        if ax.extent > 1:
            lines.append(f"{indent}for (int i{pos} = 0; i{pos} < "
                         f"{ax.extent}; ++i{pos}) {{")
            closes.append(indent + "}")
            indent += "  "
        else:
            lines.append(f"{indent}const int i{pos} = 0;")
    strides = [int(np.prod(kernel.out_shape[p + 1:]))
               for p in range(len(kernel.out_shape))]
    out_idx = " + ".join(
        [f"__eid * {w}"]
        + [f"i{p} * {s}" if s != 1 else f"i{p}"
           for p, s in enumerate(strides)])
    if red is None:
        lines.append(f"{indent}if (threadIdx.x == 0) "
                     f"out[{out_idx}] = {expr_to_c(simplify(body))};")
    elif kernel.tree_reduce:
        kvar = red.axes[0]
        src_c = expr_to_c(simplify(red.source))
        lines.append(f"{indent}// tree reduction across threadIdx.x "
                     "(paper Fig. 7b, Harris [34])")
        lines.append(f"{indent}float _acc = 0.0f;")
        lines.append(f"{indent}for (int {kvar.name} = threadIdx.x; "
                     f"{kvar.name} < {kvar.extent}; "
                     f"{kvar.name} += blockDim.x) _acc += {src_c};")
        lines.append(f"{indent}_reduce_buf[threadIdx.x] = _acc;")
        lines.append(f"{indent}__syncthreads();")
        lines.append(f"{indent}for (int _s = blockDim.x / 2; _s > 0; "
                     "_s >>= 1) {")
        lines.append(f"{indent}  if (threadIdx.x < _s) "
                     "_reduce_buf[threadIdx.x] += "
                     "_reduce_buf[threadIdx.x + _s];")
        lines.append(f"{indent}  __syncthreads();")
        lines.append(f"{indent}}}")
        wrapped = expr_to_c(simplify(_replace_reduce(
            body, E.Var("_reduce_buf[0]", "float32"))))
        lines.append(f"{indent}if (threadIdx.x == 0) "
                     f"out[{out_idx}] = {wrapped};")
    else:
        kvar = red.axes[0]
        lines.append(f"{indent}float _m = 0.0f;")
        lines.append(f"{indent}for (int {kvar.name} = 0; {kvar.name} < "
                     f"{kvar.extent}; ++{kvar.name}) "
                     f"_m += {expr_to_c(simplify(red.source))};")
        wrapped = expr_to_c(simplify(_replace_reduce(
            body, E.Var("_m", "float32"))))
        lines.append(f"{indent}if (threadIdx.x == 0) "
                     f"out[{out_idx}] = {wrapped};")
    lines.extend(reversed(closes))
    lines.append("}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def _as_fds(fds) -> FDS:
    if fds is None:
        return default_fds()
    if isinstance(fds, FDS):
        return fds
    return FDS(fds)


def compile_spmm(A, msgfunc: Callable, aggregation="sum", target: str = "cpu",
                 fds=None, *, cache: KernelCache | None = None,
                 pipeline: CompilePipeline | None = None, **options):
    """Compile (or fetch from the cache) a generalized-SpMM kernel.

    The unified entry behind :func:`repro.core.api.spmm`: runs the front
    passes to form a :class:`KernelSpec`, consults ``cache`` (the process
    cache by default), and lowers through the full pipeline only on a miss.
    """
    from repro.core.spmm import resolve_aggregation

    if target not in ("cpu", "gpu"):
        raise ValueError(f"unknown target {target!r}")
    A = spmat(A)
    agg = resolve_aggregation(aggregation)
    cache = cache if cache is not None else get_kernel_cache()
    pipeline = pipeline if pipeline is not None else default_pipeline()
    ctx = CompileContext("spmm", A, msgfunc, agg, target, _as_fds(fds),
                         dict(options))
    return pipeline.compile(ctx, cache)


def compile_sddmm(A, edgefunc: Callable, target: str = "cpu", fds=None, *,
                  cache: KernelCache | None = None,
                  pipeline: CompilePipeline | None = None, **options):
    """Compile (or fetch from the cache) a generalized-SDDMM kernel."""
    if target not in ("cpu", "gpu"):
        raise ValueError(f"unknown target {target!r}")
    A = spmat(A)
    cache = cache if cache is not None else get_kernel_cache()
    pipeline = pipeline if pipeline is not None else default_pipeline()
    ctx = CompileContext("sddmm", A, edgefunc, None, target, _as_fds(fds),
                         dict(options))
    return pipeline.compile(ctx, cache)


def ensure_compiled(kernel, pipeline: CompilePipeline | None = None
                    ) -> CompileRecord:
    """Attach (and return) a compile record for a template kernel.

    Kernels obtained through :func:`compile_spmm` / :func:`compile_sddmm`
    already carry one; for a kernel constructed directly this runs the back
    passes (lower/validate/simplify/codegen) once, outside the cache.
    """
    record = getattr(kernel, "_compile_record", None)
    if record is not None:
        return record
    pipeline = pipeline if pipeline is not None else default_pipeline()
    ctx = CompileContext.from_kernel(kernel)
    pipeline.run_back(ctx)
    ctx.spec = ctx.make_spec()
    record = CompileRecord(spec=ctx.spec, timings=tuple(ctx.timings),
                           artifacts=dict(ctx.artifacts),
                           exec_stats=getattr(kernel, "exec_stats", None))
    kernel._compile_record = record
    return record
