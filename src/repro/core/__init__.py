"""FeatGraph core: the paper's primary contribution.

The public API mirrors the paper's code listings (Figs. 3 and 4)::

    import repro.core as featgraph
    from repro import tensorir as tvm

    A = featgraph.spmat(adj)                      # wrap a CSR adjacency
    XV = tvm.placeholder((n, d), name="XV")

    def msgfunc(src, dst, eid):                   # fine-grained UDF
        return tvm.compute((d,), lambda i: XV[src, i])

    def cpu_schedule(out):                        # feature dimension schedule
        s = tvm.create_schedule(out)
        s[out].split(out.op.axis[0], factor=8)
        return s

    GCN = featgraph.spmm(A, msgfunc, "sum", target="cpu", fds=cpu_schedule)
    H = GCN.run({"XV": features})
    cost = GCN.cost()                              # machine-model estimate

Submodules:

- :mod:`repro.core.api` -- ``spmat`` / ``spmm`` / ``sddmm`` entry points.
- :mod:`repro.core.fds` -- feature-dimension-schedule handling and prebuilt
  FDS factories for CPU tiling / GPU thread binding / tree reduction.
- :mod:`repro.core.spmm` -- the generalized SpMM template (vertex-wise).
- :mod:`repro.core.sddmm` -- the generalized SDDMM template (edge-wise).
- :mod:`repro.core.compile` -- the unified compile pipeline: ``KernelSpec``
  kernel identity, named compile passes, and the process-wide instrumented
  ``KernelCache``.
- :mod:`repro.core.kernels` -- prebuilt GNN kernels (GCN aggregation, MLP
  aggregation, dot-product attention, DGL builtin message functions).
- :mod:`repro.core.builtins` -- the single registry of DGL builtin
  message/edge function factories.
- :mod:`repro.core.tuner` -- grid-search tuning of scheduling parameters.
- :mod:`repro.core.cost` -- UDF flop analysis feeding the machine models.
"""

from repro.core.api import spmat, SparseMat
from repro.core.fds import (
    FDS,
    cpu_tile_fds,
    cpu_multilevel_fds,
    gpu_feature_thread_fds,
    gpu_tree_reduce_fds,
    gpu_multilevel_fds,
    default_fds,
    default_fds_for,
)
from repro.core.spmm import GeneralizedSpMM
from repro.core.sddmm import GeneralizedSDDMM
from repro.core import builtins
from repro.core import kernels
from repro.core.tuner import AnnealingTuner, GridTuner, RandomTuner, TuneResult

from repro.core.softmax import EdgeSoftmax
from repro.core.program import KernelProgram
from repro.core.transfer import TunedConfig, TuningCache, transfer_config
from repro.core.verify import verify_sddmm, verify_spmm
from repro.core.bindings import BindingError
from repro.core.compile import (
    CompilePipeline,
    KernelCache,
    KernelSpec,
    compile_sddmm,
    compile_spmm,
    get_kernel_cache,
    set_kernel_cache,
    use_kernel_cache,
)

# Bind the entry-point functions *after* the submodule imports above: the
# `repro.core.spmm` / `repro.core.sddmm` module objects would otherwise
# shadow the same-named functions on the package.
from repro.core.api import spmm, sddmm  # noqa: E402

__all__ = [
    "spmat",
    "spmm",
    "sddmm",
    "SparseMat",
    "FDS",
    "cpu_tile_fds",
    "cpu_multilevel_fds",
    "gpu_feature_thread_fds",
    "gpu_tree_reduce_fds",
    "gpu_multilevel_fds",
    "default_fds",
    "default_fds_for",
    "GeneralizedSpMM",
    "GeneralizedSDDMM",
    "builtins",
    "kernels",
    "GridTuner",
    "RandomTuner",
    "AnnealingTuner",
    "TuneResult",
    "CompilePipeline",
    "KernelCache",
    "KernelSpec",
    "compile_spmm",
    "compile_sddmm",
    "get_kernel_cache",
    "set_kernel_cache",
    "use_kernel_cache",
    "EdgeSoftmax",
    "KernelProgram",
    "TunedConfig",
    "TuningCache",
    "transfer_config",
    "verify_spmm",
    "verify_sddmm",
    "BindingError",
]
