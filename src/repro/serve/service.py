"""Online node-inference service: queue, micro-batcher, admission control.

This is the product surface over :func:`repro.minidgl.train.infer_minibatch`
(docs/serving.md).  Clients submit single- or multi-seed inference requests
(optionally with a deadline) to :class:`InferenceService`; a batcher thread
coalesces everything that arrives within one batch window
(``FEATGRAPH_BATCH_WINDOW_MS``) into **one sampled block per batch**:
the union of the queued seeds is deduplicated, sampled once with
:func:`~repro.minidgl.sampling.build_blocks`, run through the model's
``forward_blocks``, and the logits rows are scattered back to each
request's future in request order.

Because compiled kernels are topology-independent
(:mod:`repro.core.compile`), every fresh per-batch block after warmup
re-binds cached kernel templates -- steady-state serving performs **zero
recompiles**, which is what makes micro-batching pay: the per-batch cost
is one sample + one bound forward regardless of how many requests share
it.

Operational controls:

- **admission control** -- at most ``max_queue_depth`` requests may wait;
  beyond that :meth:`submit` raises :class:`Overloaded` immediately
  (shed load at the door, don't let latency collapse);
- **deadlines** -- a request whose deadline has passed by the time its
  batch forms is failed with :class:`DeadlineExceeded` instead of wasting
  batch capacity;
- **graceful shutdown** -- :meth:`close` (``drain=True``) stops admission,
  lets the batcher drain every queued request (skipping batch windows),
  and joins the thread; ``drain=False`` cancels the queue with
  :class:`ServiceClosed`;
- **feature cache** -- ``feature_cache_bytes > 0`` fronts the gather of
  each block's source features with a pinned-budget LRU row cache
  (:class:`~repro.serve.cache.FeatureCache`).

Every served request carries a :class:`ServeStats` with the same flavour
of accounting as the kernels' ``ExecStats``: where the time went
(queue/sample/compute/total), how full its batch was, and how the feature
cache behaved.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.minidgl.autograd import Tensor, no_grad
from repro.minidgl.sampling import build_blocks
from repro.serve.cache import FeatureCache

__all__ = [
    "DEFAULT_BATCH_WINDOW_MS",
    "DeadlineExceeded",
    "InferenceService",
    "Overloaded",
    "ServeFuture",
    "ServeStats",
    "ServiceClosed",
]

#: fanout that keeps every edge: full-neighborhood (deterministic) serving
_FULL_NEIGHBORHOOD = 1 << 30

DEFAULT_BATCH_WINDOW_MS = 2.0


def _default_batch_window_ms() -> float:
    """Batch window from ``FEATGRAPH_BATCH_WINDOW_MS`` (default 2 ms;
    0 disables coalescing -- every request runs in its own batch)."""
    env = os.environ.get("FEATGRAPH_BATCH_WINDOW_MS")
    if env:
        return max(0.0, float(env))
    return DEFAULT_BATCH_WINDOW_MS


class Overloaded(RuntimeError):
    """Request rejected at admission: the queue is at ``max_queue_depth``."""


class DeadlineExceeded(TimeoutError):
    """The request's deadline passed before its batch ran."""


class ServiceClosed(RuntimeError):
    """The service is shut down (or was closed before the request ran)."""


@dataclass(frozen=True)
class ServeStats:
    """Per-request serving accounting (the request-path ``ExecStats``).

    ``queue_seconds`` is admission-to-batch-formation wait,
    ``sample_seconds``/``compute_seconds`` the request's batch's block
    sampling and forward time (shared by every request in the batch),
    ``total_seconds`` admission-to-reply wall clock.  ``batch_requests`` /
    ``batch_seeds`` describe the batch the request rode in (seeds are
    post-dedup); ``occupancy`` is ``batch_seeds / max_batch_seeds``.
    ``cache_hit_rate`` is the feature cache's hit rate over this batch's
    gather (``nan`` without a cache).
    """

    queue_seconds: float
    sample_seconds: float
    compute_seconds: float
    total_seconds: float
    batch_requests: int
    batch_seeds: int
    occupancy: float
    cache_hit_rate: float


class ServeFuture:
    """Handle to one in-flight request; resolved by the batcher thread."""

    def __init__(self, seeds: np.ndarray, deadline: float | None):
        self.seeds = seeds
        self._deadline = deadline
        self._enqueued = time.perf_counter()
        self._event = threading.Event()
        self._logits: np.ndarray | None = None
        self._stats: ServeStats | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block for the logits ``(len(seeds), num_classes)``; raises the
        request's error (:class:`Overloaded` never reaches here -- it is
        raised at :meth:`InferenceService.submit`)."""
        if not self._event.wait(timeout):
            raise TimeoutError("request not served within timeout")
        if self._error is not None:
            raise self._error
        return self._logits

    def stats(self) -> ServeStats | None:
        """The request's :class:`ServeStats` once resolved (also set on
        deadline failures, with zero compute)."""
        return self._stats

    def _resolve(self, logits: np.ndarray, stats: ServeStats) -> None:
        self._logits = logits
        self._stats = stats
        self._event.set()

    def _fail(self, error: BaseException,
              stats: ServeStats | None = None) -> None:
        self._error = error
        self._stats = stats
        self._event.set()


class InferenceService:
    """Thread-based online inference over a model/dataset/backend triple.

    ``fanouts=None`` serves full neighborhoods (deterministic logits --
    the evaluation-mode contract of ``infer_minibatch``); a fanout list
    samples, drawing from the service's private ``rng`` on the batcher
    thread.  ``max_batch_seeds`` caps post-coalescing batch size: the
    batcher stops collecting once adding the next queued request would
    exceed it (a single oversized request still runs alone).

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(self, model, dataset, backend, *,
                 fanouts: list[int] | None = None,
                 batch_window_ms: float | None = None,
                 max_batch_seeds: int = 256,
                 max_queue_depth: int = 64,
                 feature_cache_bytes: int = 0,
                 rng: np.random.Generator | None = None,
                 start: bool = True):
        if dataset.features is None:
            raise ValueError("dataset lacks features")
        if max_batch_seeds < 1:
            raise ValueError("max_batch_seeds must be >= 1")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.model = model
        self.dataset = dataset
        self.backend = backend
        if fanouts is None:
            layers = getattr(model, "num_block_layers", 2)
            fanouts = [_FULL_NEIGHBORHOOD] * layers
        elif not fanouts:
            raise ValueError("fanouts must be non-empty (or None)")
        self.fanouts = list(fanouts)
        self.batch_window_ms = (_default_batch_window_ms()
                                if batch_window_ms is None
                                else max(0.0, float(batch_window_ms)))
        self.max_batch_seeds = int(max_batch_seeds)
        self.max_queue_depth = int(max_queue_depth)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.feature_cache = (FeatureCache(dataset.features,
                                           feature_cache_bytes)
                              if feature_cache_bytes else None)
        self._out_dim = getattr(model, "out_dim", None)
        self._pending: "deque[ServeFuture]" = deque()
        self._cond = threading.Condition()
        self._closing = False
        self._closed = False
        self._thread: threading.Thread | None = None
        # aggregate counters (batcher-thread writes, GIL-consistent reads)
        self._accepted = 0
        self._rejected = 0
        self._expired = 0
        self._cancelled = 0
        self._served = 0
        self._batches = 0
        self._seeds_served = 0
        self._unique_seeds_served = 0
        self._sample_seconds = 0.0
        self._compute_seconds = 0.0
        if start:
            self.start()

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "InferenceService":
        """Start the batcher thread (idempotent; `start=False` constructors
        call this once admission tests have staged their queue)."""
        if self._closed:
            raise ServiceClosed("service already closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._worker, daemon=True, name="repro-serve-batcher")
            self._thread.start()
        return self

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self, *, drain: bool = True,
              timeout: float | None = None) -> None:
        """Stop admission and shut down.  ``drain=True`` serves every
        already-queued request first (batch windows are skipped so the
        drain is prompt); ``drain=False`` fails them with
        :class:`ServiceClosed`."""
        with self._cond:
            self._closing = True
            if not drain:
                while self._pending:
                    fut = self._pending.popleft()
                    self._cancelled += 1
                    fut._fail(ServiceClosed(
                        "service closed before the request ran"))
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
        self._closed = True

    # -- request intake -------------------------------------------------

    def submit(self, seeds, *, deadline_s: float | None = None) -> ServeFuture:
        """Enqueue an inference request; returns its :class:`ServeFuture`.

        ``seeds`` is a scalar vertex id (single-seed request) or a 1-D id
        array; the future's logits have one row per seed, in the given
        order (duplicate seeds within a request are fine).  ``deadline_s``
        is a relative deadline: if the batch forms after it the request
        fails with :class:`DeadlineExceeded`.  Raises :class:`Overloaded`
        when ``max_queue_depth`` requests already wait, and
        :class:`ServiceClosed` after shutdown began.
        """
        seeds = np.atleast_1d(np.asarray(seeds, dtype=np.int64))
        if seeds.ndim != 1:
            raise ValueError("seeds must be a scalar or 1-D id array")
        now = time.perf_counter()
        fut = ServeFuture(seeds, None if deadline_s is None
                          else now + float(deadline_s))
        if len(seeds) == 0:
            # nothing to infer; resolve immediately with a (0, C) result
            fut._resolve(np.zeros((0, int(self._out_dim or 0)),
                                  dtype=np.float32),
                         ServeStats(0.0, 0.0, 0.0, 0.0, 0, 0, 0.0,
                                    float("nan")))
            self._accepted += 1
            self._served += 1
            return fut
        with self._cond:
            if self._closing:
                raise ServiceClosed("service is shut down")
            if len(self._pending) >= self.max_queue_depth:
                self._rejected += 1
                raise Overloaded(
                    f"queue depth {len(self._pending)} at limit "
                    f"{self.max_queue_depth}")
            self._accepted += 1
            self._pending.append(fut)
            self._cond.notify_all()
        return fut

    def infer(self, seeds, *, deadline_s: float | None = None,
              timeout: float | None = None) -> tuple[np.ndarray, ServeStats]:
        """Synchronous convenience: submit and wait; returns
        ``(logits, stats)``."""
        fut = self.submit(seeds, deadline_s=deadline_s)
        logits = fut.result(timeout)
        return logits, fut.stats()

    # -- batcher --------------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closing:
                    self._cond.wait(0.05)
                if not self._pending:
                    return  # closing and drained
                batch = [self._pending.popleft()]
            n_seeds = len(batch[0].seeds)
            window_end = time.perf_counter() + self.batch_window_ms / 1e3
            # coalesce whatever arrives within the window, FIFO, up to
            # max_batch_seeds; a drain (closing) skips the wait
            while n_seeds < self.max_batch_seeds:
                with self._cond:
                    if not self._pending:
                        if self._closing:
                            break
                        remaining = window_end - time.perf_counter()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                        if not self._pending:
                            continue
                    nxt = self._pending[0]
                    if n_seeds + len(nxt.seeds) > self.max_batch_seeds:
                        break
                    self._pending.popleft()
                batch.append(nxt)
                n_seeds += len(nxt.seeds)
            self._run_batch(batch)

    def _run_batch(self, batch: list[ServeFuture]) -> None:
        t_formed = time.perf_counter()
        live: list[ServeFuture] = []
        for fut in batch:
            if fut._deadline is not None and t_formed > fut._deadline:
                self._expired += 1
                fut._fail(DeadlineExceeded(
                    "deadline passed before the batch formed"),
                    ServeStats(t_formed - fut._enqueued, 0.0, 0.0,
                               t_formed - fut._enqueued, 0, 0, 0.0,
                               float("nan")))
            else:
                live.append(fut)
        if not live:
            return
        try:
            all_seeds = np.concatenate([f.seeds for f in live])
            uniq, inverse = np.unique(all_seeds, return_inverse=True)
            t0 = time.perf_counter()
            blocks = build_blocks(self.dataset.adj, uniq, self.fanouts,
                                  self.rng)
            sample_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            if self.feature_cache is not None:
                h0 = self.feature_cache.hits
                m0 = self.feature_cache.misses
                feats = self.feature_cache.gather(blocks[0].src_ids)
                dh = self.feature_cache.hits - h0
                dm = self.feature_cache.misses - m0
                hit_rate = dh / (dh + dm) if dh + dm else 0.0
            else:
                feats = blocks[0].gather_src_features(self.dataset.features)
                hit_rate = float("nan")
            self.model.eval()
            with no_grad():
                logits = self.model.forward_blocks(
                    blocks, Tensor(feats), self.backend).numpy()
        except BaseException as exc:
            for fut in live:  # never leave a client blocked on a crash
                fut._fail(exc)
            return
        t_done = time.perf_counter()
        compute_s = t_done - t0
        occupancy = len(uniq) / self.max_batch_seeds
        off = 0
        for fut in live:
            k = len(fut.seeds)
            rows = logits[inverse[off:off + k]]
            off += k
            fut._resolve(rows, ServeStats(
                queue_seconds=t_formed - fut._enqueued,
                sample_seconds=sample_s,
                compute_seconds=compute_s,
                total_seconds=t_done - fut._enqueued,
                batch_requests=len(live),
                batch_seeds=len(uniq),
                occupancy=occupancy,
                cache_hit_rate=hit_rate,
            ))
        self._served += len(live)
        self._batches += 1
        self._seeds_served += len(all_seeds)
        self._unique_seeds_served += len(uniq)
        self._sample_seconds += sample_s
        self._compute_seconds += compute_s

    # -- accounting -----------------------------------------------------

    def stats(self) -> dict:
        """Service-level counters (the aggregate view of ServeStats)."""
        batches = self._batches
        return {
            "accepted": self._accepted,
            "rejected": self._rejected,
            "expired": self._expired,
            "cancelled": self._cancelled,
            "served": self._served,
            "batches": batches,
            "pending": len(self._pending),
            "seeds_served": self._seeds_served,
            "unique_seeds_served": self._unique_seeds_served,
            "mean_batch_requests": self._served / batches if batches else 0.0,
            "mean_batch_seeds":
                self._unique_seeds_served / batches if batches else 0.0,
            "sample_seconds": self._sample_seconds,
            "compute_seconds": self._compute_seconds,
            "batch_window_ms": self.batch_window_ms,
            "max_batch_seeds": self.max_batch_seeds,
            "max_queue_depth": self.max_queue_depth,
            "cache": (self.feature_cache.stats()
                      if self.feature_cache is not None else None),
        }
