"""Online node-inference serving layer (docs/serving.md).

Turns :func:`repro.minidgl.train.infer_minibatch` into a product surface:
an async request queue with per-request deadlines, dynamic micro-batching
(one sampled block per batch window), admission control, graceful drain,
and a pinned-budget LRU feature-row cache -- all riding the two-level
kernel cache so steady-state serving performs zero recompiles.
"""

from repro.serve.cache import FeatureCache
from repro.serve.service import (
    DEFAULT_BATCH_WINDOW_MS,
    DeadlineExceeded,
    InferenceService,
    Overloaded,
    ServeFuture,
    ServeStats,
    ServiceClosed,
)

__all__ = [
    "DEFAULT_BATCH_WINDOW_MS",
    "DeadlineExceeded",
    "FeatureCache",
    "InferenceService",
    "Overloaded",
    "ServeFuture",
    "ServeStats",
    "ServiceClosed",
]
