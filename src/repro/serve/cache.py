"""Hot feature-row cache for the serving layer (docs/serving.md).

Online inference gathers the feature rows of every sampled block's source
frontier (:meth:`Block.gather_src_features`).  Under a request workload
those gathers are highly skewed -- hub vertices land in nearly every
frontier -- so the serving layer fronts the global feature matrix with a
pinned-budget row cache, modeled on DGL's frame cache: a fixed byte budget
is carved into feature-row slots, rows are filled on miss, and the least
recently used row is evicted when the budget is full.

The cache is deliberately simple and single-writer: only the service's
batcher thread calls :meth:`gather`, so lookups need no lock (readers of
:meth:`stats` see monotonic counters under the GIL).  The hit path is
vectorized -- one ``slot_of`` table lookup per gather plus fancy-indexed
copies -- and only LRU bookkeeping touches Python per row.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

__all__ = ["FeatureCache"]


class FeatureCache:
    """LRU cache of feature rows under a pinned byte budget.

    ``budget_bytes`` is divided into ``capacity_rows`` fixed-size slots of
    one feature row each; a budget smaller than a single row is rejected.
    ``gather(ids)`` returns ``features[ids]`` row-for-row, serving hits
    from the pinned buffer and filling misses from the backing matrix.
    """

    def __init__(self, features: np.ndarray, budget_bytes: int):
        features = np.asarray(features)
        if features.ndim < 2:
            raise ValueError("features must be (num_vertices, ...) rows")
        row_bytes = int(features.dtype.itemsize
                        * int(np.prod(features.shape[1:])))
        capacity = int(budget_bytes // row_bytes) if row_bytes else 0
        if capacity < 1:
            raise ValueError(
                f"budget_bytes={budget_bytes} holds no feature row "
                f"(row_bytes={row_bytes})")
        self._features = features
        self.budget_bytes = int(budget_bytes)
        self.row_bytes = row_bytes
        self.capacity_rows = capacity
        self._buf = np.empty((capacity,) + features.shape[1:],
                             dtype=features.dtype)
        #: vertex id -> slot in ``_buf``; -1 when not cached
        self._slot_of = np.full(features.shape[0], -1, dtype=np.int64)
        #: insertion/recency order; maps vertex id -> slot
        self._lru: "OrderedDict[int, int]" = OrderedDict()
        self._next_slot = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lru)

    def gather(self, ids: np.ndarray) -> np.ndarray:
        """Return the feature rows of ``ids`` (in order), through the cache."""
        ids = np.asarray(ids, dtype=np.int64)
        out = np.empty((len(ids),) + self._buf.shape[1:],
                       dtype=self._buf.dtype)
        if len(ids) == 0:
            return out
        slots = self._slot_of[ids]
        hit = slots >= 0
        if hit.any():
            out[hit] = self._buf[slots[hit]]
            for vid in ids[hit].tolist():
                self._lru.move_to_end(vid)
            self.hits += int(hit.sum())
        miss_ids = ids[~hit]
        if len(miss_ids):
            rows = self._features[miss_ids]
            out[~hit] = rows
            for vid, row in zip(miss_ids.tolist(), rows):
                self._insert(vid, row)
            self.misses += len(miss_ids)
        return out

    def _insert(self, vid: int, row: np.ndarray) -> None:
        if self._slot_of[vid] >= 0:  # duplicate id within one gather
            self._lru.move_to_end(vid)
            return
        if len(self._lru) >= self.capacity_rows:
            old, slot = self._lru.popitem(last=False)
            self._slot_of[old] = -1
            self.evictions += 1
        else:
            slot = self._next_slot
            self._next_slot += 1
        self._buf[slot] = row
        self._slot_of[vid] = slot
        self._lru[vid] = slot

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "budget_bytes": self.budget_bytes,
            "row_bytes": self.row_bytes,
            "capacity_rows": self.capacity_rows,
            "rows": len(self._lru),
            "bytes_pinned": len(self._lru) * self.row_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
