"""Vectorized (numpy) interpretation of tensor expressions.

Two entry points:

- :func:`evaluate` computes a :class:`~repro.tensorir.expr.Tensor` defined by
  a ``compute`` op into a numpy array, given bindings for its placeholders.

- :func:`evaluate_batched` is the workhorse of FeatGraph's sparse templates:
  it evaluates a UDF's compute op once *per element of a batch*, where the
  UDF's free variables (``src``, ``dst``, ``eid``) are bound to integer
  arrays of shape ``(B,)``.  The result has shape ``(B, *op.shape)``.  This
  corresponds to the generated kernel's edge/vertex loop with the feature
  dimension computation inlined, executed with numpy vectorization over the
  batch and the data-parallel output axes.

Reductions are evaluated by iterating the reduce axis in Python while
combining numpy-vectorized slices -- reduce extents in GNN UDFs are feature
dimensions (tens to hundreds), so this keeps peak memory at
``O(B * prod(out.shape))`` instead of materializing the full reduction
domain.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.tensorir import expr as E

__all__ = ["evaluate", "evaluate_batched", "eval_expr"]

_UNARY_FUNCS = {
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "tanh": np.tanh,
    "abs": np.abs,
    "floor": np.floor,
    "ceil": np.ceil,
}

_NP_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "int32": np.int32,
    "int64": np.int64,
    "bool": np.bool_,
}


def _np_dtype(dtype: str):
    try:
        return _NP_DTYPES[dtype]
    except KeyError:
        raise ValueError(f"unsupported dtype {dtype!r}") from None


def _combine(combiner: str, acc, val):
    if combiner == "sum":
        return acc + val
    if combiner == "prod":
        return acc * val
    if combiner == "max":
        return np.maximum(acc, val)
    if combiner == "min":
        return np.minimum(acc, val)
    raise ValueError(f"unknown combiner {combiner!r}")


class _Env:
    """Evaluation environment.

    ``bindings`` maps names of placeholders to numpy arrays and names of
    free/iter variables to scalars or broadcastable arrays.
    """

    def __init__(self, bindings: Mapping[str, np.ndarray]):
        self.bindings = dict(bindings)

    def child(self, extra: Mapping[str, np.ndarray]) -> "_Env":
        env = _Env(self.bindings)
        env.bindings.update(extra)
        return env

    def lookup(self, name: str):
        try:
            return self.bindings[name]
        except KeyError:
            raise KeyError(f"unbound variable or placeholder {name!r}") from None


def eval_expr(node: E.Expr, env: _Env):
    """Recursively evaluate an expression node to a numpy value."""
    if isinstance(node, E.IntImm):
        return np.int64(node.value)
    if isinstance(node, E.FloatImm):
        return np.float32(node.value) if node.dtype == "float32" else np.float64(node.value)
    if isinstance(node, (E.IterVar, E.Var)):
        return env.lookup(node.name)
    if isinstance(node, E.TensorElem):
        base = env.lookup(node.tensor.name)
        idx = tuple(eval_expr(i, env) for i in node.indices)
        # Advanced indexing broadcasts the index arrays against each other,
        # which is exactly the semantics we want for batched evaluation.
        if all(np.isscalar(i) or np.ndim(i) == 0 for i in idx):
            return base[tuple(int(i) for i in idx)]
        return base[tuple(np.asarray(i) for i in idx)]
    if isinstance(node, E.BinOp):
        a = eval_expr(node.a, env)
        b = eval_expr(node.b, env)
        op = node.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return a / b
        if op == "//":
            return a // b
        if op == "%":
            return a % b
        if op == "max":
            return np.maximum(a, b)
        if op == "min":
            return np.minimum(a, b)
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        raise ValueError(f"unknown binary op {op!r}")
    if isinstance(node, E.Call):
        args = [eval_expr(a, env) for a in node.args]
        if node.func == "sigmoid":
            return 1.0 / (1.0 + np.exp(-args[0]))
        if node.func == "pow":
            return np.power(args[0], args[1])
        return _UNARY_FUNCS[node.func](args[0])
    if isinstance(node, E.Select):
        cond = eval_expr(node.cond, env)
        return np.where(cond, eval_expr(node.then, env), eval_expr(node.otherwise, env))
    if isinstance(node, E.Cast):
        return np.asarray(eval_expr(node.value, env)).astype(_np_dtype(node.dtype))
    if isinstance(node, E.Reduce):
        return _eval_reduce(node, env)
    raise TypeError(f"cannot evaluate node of type {type(node).__name__}")


def _eval_reduce(node: E.Reduce, env: _Env):
    """Iterate reduce axes in Python, combining vectorized slices."""
    axes = node.axes
    acc = None
    # Iterate the cartesian product of all reduce-axis values.
    def rec(depth: int, env: _Env):
        nonlocal acc
        if depth == len(axes):
            val = eval_expr(node.source, env)
            acc = val if acc is None else _combine(node.combiner, acc, val)
            return
        ax = axes[depth]
        lo, hi = ax.dom
        for v in range(lo, hi):
            rec(depth + 1, env.child({ax.name: np.int64(v)}))

    rec(0, env)
    if acc is None:  # empty reduction domain
        return np.float32(node.identity)
    return acc


def _axis_grid(axes, batch_ndim: int, axis_ranges=None):
    """Bind each data-parallel output axis to a broadcast-shaped arange.

    Axis ``j`` gets shape ``(1,)*batch_ndim + (1,)*j + (extent,) + (1,)*rest``
    so that index arithmetic broadcasts into the full output shape.
    ``axis_ranges`` optionally restricts named axes to a sub-range (feature
    tiling: only that slice of the output is computed).
    """
    n = len(axes)
    out = {}
    for j, ax in enumerate(axes):
        lo, hi = ax.dom
        if axis_ranges and ax.name in axis_ranges:
            lo, hi = axis_ranges[ax.name]
            if not (ax.dom[0] <= lo <= hi <= ax.dom[1]):
                raise ValueError(f"axis range {lo, hi} outside domain of {ax.name}")
        shape = [1] * (batch_ndim + n)
        shape[batch_ndim + j] = hi - lo
        out[ax.name] = np.arange(lo, hi, dtype=np.int64).reshape(shape)
    return out


def evaluate(tensor: E.Tensor, bindings: Mapping[str, np.ndarray]) -> np.ndarray:
    """Evaluate a compute tensor to a numpy array.

    ``bindings`` maps placeholder names (and any free-variable names) to
    numpy arrays / scalars.
    """
    op = tensor.op
    if not isinstance(op, E.ComputeOp):
        return np.asarray(bindings[tensor.name])
    env = _Env(bindings).child(_axis_grid(op.axis, batch_ndim=0))
    val = eval_expr(op.body, env)
    out = np.broadcast_to(np.asarray(val), op.shape)
    return np.ascontiguousarray(out, dtype=_np_dtype(tensor.dtype))


def evaluate_batched(
    tensor: E.Tensor,
    bindings: Mapping[str, np.ndarray],
    batch_vars: Mapping[str, np.ndarray],
    axis_ranges: Mapping[str, tuple[int, int]] | None = None,
) -> np.ndarray:
    """Evaluate a compute tensor once per batch element.

    ``batch_vars`` maps free-variable names (``src``, ``dst``, ``eid``) to
    integer arrays, all of identical shape ``(B,)``.  Returns an array of
    shape ``(B, *tensor.shape)``.  With ``axis_ranges``, only the named
    output-axis sub-ranges are computed (feature-dimension tiling); the
    returned shape shrinks accordingly.
    """
    op = tensor.op
    if not isinstance(op, E.ComputeOp):
        raise TypeError("evaluate_batched requires a compute tensor")
    out_shape = []
    for ax in op.axis:
        if axis_ranges and ax.name in axis_ranges:
            lo, hi = axis_ranges[ax.name]
            out_shape.append(hi - lo)
        else:
            out_shape.append(ax.extent)
    out_shape = tuple(out_shape)
    items = list(batch_vars.items())
    if not items:
        env = _Env(bindings).child(_axis_grid(op.axis, batch_ndim=0, axis_ranges=axis_ranges))
        val = eval_expr(op.body, env)
        out = np.broadcast_to(np.asarray(val), out_shape)
        return np.ascontiguousarray(out, dtype=_np_dtype(tensor.dtype))[None]
    batch_len = len(np.asarray(items[0][1]))
    n_out = len(op.axis)
    env = _Env(bindings)
    # Reshape batch vars to (B, 1, ..., 1) so they broadcast against axes.
    shaped = {}
    for name, arr in items:
        arr = np.asarray(arr, dtype=np.int64)
        if arr.ndim != 1 or len(arr) != batch_len:
            raise ValueError("all batch variables must be 1-D of equal length")
        shaped[name] = arr.reshape((batch_len,) + (1,) * n_out)
    env = env.child(shaped)
    env = env.child(_axis_grid(op.axis, batch_ndim=1, axis_ranges=axis_ranges))
    val = eval_expr(op.body, env)
    out = np.asarray(val)
    full = (batch_len,) + out_shape
    if out.shape != full:
        out = np.broadcast_to(out, full)
    dtype = _np_dtype(tensor.dtype)
    if out.dtype == dtype and out.flags["C_CONTIGUOUS"]:
        return out
    return np.ascontiguousarray(out, dtype=dtype)
