"""Code generation: loop-nest IR -> executable Python kernels.

:func:`build` lowers a schedule and emits a Python function whose loop
structure mirrors the scheduled IR.  The generated source is kept on the
returned :class:`Kernel` (``kernel.source``) so tests and users can inspect
what the schedule produced -- the moral equivalent of TVM's
``lower(..., simple_mode=True)`` output plus ``tvm.build``.

Two targets:

- ``"cpu"`` -- plain nested Python loops; ``parallel`` loops dispatch chunks
  to the runtime worker pool; ``vectorize`` loops execute as-written (the
  SIMD benefit is accounted by the CPU machine model, not by the
  interpreter).
- ``"gpu"`` -- axes bound to ``block.*``/``thread.*`` become grid dimensions;
  the kernel body is generated as a device function over
  ``(block_idx, thread_idx)`` and the host-side ``__call__`` iterates the
  grid, which functionally simulates the launch.  The launch geometry is
  exposed for the GPU machine model.

The generated kernels are intended for correctness tests and small dense
UDFs; the sparse templates execute through the vectorized evaluator instead
(see :mod:`repro.core.spmm`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.tensorir import expr as E
from repro.tensorir import ir as I
from repro.tensorir.lower import lower
from repro.tensorir.schedule import Schedule

__all__ = ["build", "Kernel", "expr_to_py"]

_COMBINE_PY = {
    "sum": "{acc} + {val}",
    "prod": "{acc} * {val}",
    "max": "max({acc}, {val})",
    "min": "min({acc}, {val})",
}

_CALL_PY = {
    "exp": "math.exp",
    "log": "math.log",
    "sqrt": "math.sqrt",
    "tanh": "math.tanh",
    "abs": "abs",
    "floor": "math.floor",
    "ceil": "math.ceil",
    "pow": "math.pow",
}


def expr_to_py(node: E.Expr) -> str:
    """Render an expression node as Python source."""
    if isinstance(node, E.IntImm):
        return repr(node.value)
    if isinstance(node, E.FloatImm):
        return repr(node.value)
    if isinstance(node, (E.IterVar, E.Var)):
        return _pyname(node.name)
    if isinstance(node, E.TensorElem):
        idx = ", ".join(expr_to_py(i) for i in node.indices)
        return f"{_pyname(node.tensor.name)}[{idx}]"
    if isinstance(node, E.BinOp):
        a, b = expr_to_py(node.a), expr_to_py(node.b)
        if node.op == "max":
            return f"max({a}, {b})"
        if node.op == "min":
            return f"min({a}, {b})"
        return f"({a} {node.op} {b})"
    if isinstance(node, E.Call):
        if node.func == "sigmoid":
            return f"(1.0 / (1.0 + math.exp(-({expr_to_py(node.args[0])}))))"
        args = ", ".join(expr_to_py(a) for a in node.args)
        return f"{_CALL_PY[node.func]}({args})"
    if isinstance(node, E.Select):
        return (
            f"({expr_to_py(node.then)} if {expr_to_py(node.cond)} "
            f"else {expr_to_py(node.otherwise)})"
        )
    if isinstance(node, E.Cast):
        cast = "int" if node.dtype.startswith("int") else "float"
        return f"{cast}({expr_to_py(node.value)})"
    raise TypeError(f"cannot generate code for {type(node).__name__}")


def _pyname(name: str) -> str:
    """Sanitize IR names (which may contain '.') into Python identifiers."""
    return name.replace(".", "_")


class _Emitter:
    def __init__(self):
        self.lines: list[str] = []
        self.indent = 1

    def emit(self, text: str):
        self.lines.append("    " * self.indent + text)

    def source(self) -> str:
        return "\n".join(self.lines)


def _mentions_var(node: E.Expr, name: str) -> bool:
    if isinstance(node, (E.Var, E.IterVar)):
        return node.name == name
    return any(_mentions_var(c, name) for c in node.children())


def _vectorizable(stmt: I.Stmt, var: E.IterVar) -> bool:
    """A vectorize loop can lower to one numpy-slice statement when its body
    is a single plain Store whose tensor accesses use the loop var only as a
    bare trailing index (unit stride)."""
    if not isinstance(stmt, I.Store) or stmt.combiner is not None:
        return False

    ok = True

    def check_access(indices):
        nonlocal ok
        for pos, idx in enumerate(indices):
            if isinstance(idx, (E.Var, E.IterVar)) and idx.name == var.name:
                if pos != len(indices) - 1:
                    ok = False
            elif _mentions_var(idx, var.name):
                ok = False

    def walk(e: E.Expr):
        if isinstance(e, E.TensorElem):
            check_access(e.indices)
        for c in e.children():
            walk(c)

    check_access(stmt.indices)
    walk(stmt.value)
    return ok


def _expr_to_vec_py(node: E.Expr, var_name: str, extent: int) -> str:
    """Render an expression with the vectorized axis as a numpy slice."""
    if isinstance(node, (E.Var, E.IterVar)) and node.name == var_name:
        raise ValueError("bare vector var outside an index")
    if isinstance(node, E.TensorElem):
        parts = []
        for pos, idx in enumerate(node.indices):
            if isinstance(idx, (E.Var, E.IterVar)) and idx.name == var_name:
                parts.append(f"0:{extent}")
            else:
                parts.append(expr_to_py(idx))
        return f"{_pyname(node.tensor.name)}[{', '.join(parts)}]"
    if isinstance(node, E.BinOp):
        a = _expr_to_vec_py(node.a, var_name, extent)
        b = _expr_to_vec_py(node.b, var_name, extent)
        if node.op == "max":
            return f"np.maximum({a}, {b})"
        if node.op == "min":
            return f"np.minimum({a}, {b})"
        return f"({a} {node.op} {b})"
    if isinstance(node, E.Call):
        if node.func == "sigmoid":
            arg = _expr_to_vec_py(node.args[0], var_name, extent)
            return f"(1.0 / (1.0 + np.exp(-({arg}))))"
        np_fn = {"exp": "np.exp", "log": "np.log", "sqrt": "np.sqrt",
                 "tanh": "np.tanh", "abs": "np.abs", "pow": "np.power",
                 "floor": "np.floor", "ceil": "np.ceil"}[node.func]
        args = ", ".join(_expr_to_vec_py(a, var_name, extent)
                         for a in node.args)
        return f"{np_fn}({args})"
    if isinstance(node, E.Select):
        return (f"np.where({_expr_to_vec_py(node.cond, var_name, extent)}, "
                f"{_expr_to_vec_py(node.then, var_name, extent)}, "
                f"{_expr_to_vec_py(node.otherwise, var_name, extent)})")
    # leaves without the vector var render scalar
    return expr_to_py(node)


def _emit_vectorized_store(store: I.Store, var: E.IterVar, extent: int,
                           em: _Emitter):
    target_parts = []
    for pos, idx in enumerate(store.indices):
        if isinstance(idx, (E.Var, E.IterVar)) and idx.name == var.name:
            target_parts.append(f"0:{extent}")
        else:
            target_parts.append(expr_to_py(idx))
    target = f"{_pyname(store.buffer.name)}[{', '.join(target_parts)}]"
    value = _expr_to_vec_py(store.value, var.name, extent)
    em.emit(f"{target} = {value}  # vectorized over {var.name}")


def _emit_stmt(stmt: I.Stmt, em: _Emitter, gpu_axes: dict[str, str]):
    if isinstance(stmt, I.For):
        name = _pyname(stmt.var.name)
        if stmt.kind in gpu_axes.values():
            # Thread-bound loop: the loop variable is supplied by the launch.
            _emit_stmt(stmt.body, em, gpu_axes)
            return
        if stmt.kind == I.For.VECTORIZE and _vectorizable(stmt.body, stmt.var):
            _emit_vectorized_store(stmt.body, stmt.var, stmt.extent, em)
            return
        if stmt.kind == I.For.UNROLL and stmt.extent <= 16:
            # full unrolling: emit the body once per iteration with the loop
            # variable pinned to a constant
            for v in range(stmt.extent):
                em.emit(f"{name} = {v}  # unrolled")
                _emit_stmt(stmt.body, em, gpu_axes)
            return
        if stmt.kind.startswith("tree_reduce["):
            # Functionally a serial reduction; tag only affects the cost model.
            em.emit(f"for {name} in range({stmt.extent}):  # tree-reduce")
        elif stmt.kind == I.For.PARALLEL:
            em.emit(f"for {name} in range({stmt.extent}):  # parallel")
        elif stmt.kind == I.For.VECTORIZE:
            em.emit(f"for {name} in range({stmt.extent}):  # vectorize (scalar fallback)")
        else:
            em.emit(f"for {name} in range({stmt.extent}):")
        em.indent += 1
        _emit_stmt(stmt.body, em, gpu_axes)
        em.indent -= 1
        return
    if isinstance(stmt, I.Store):
        idx = ", ".join(expr_to_py(i) for i in stmt.indices)
        target = f"{_pyname(stmt.buffer.name)}[{idx}]"
        val = expr_to_py(stmt.value)
        if stmt.combiner is None:
            em.emit(f"{target} = {val}")
        else:
            em.emit(f"{target} = " + _COMBINE_PY[stmt.combiner].format(acc=target, val=val))
        return
    if isinstance(stmt, I.SeqStmt):
        for s in stmt.stmts:
            _emit_stmt(s, em, gpu_axes)
        return
    if isinstance(stmt, I.IfThenElse):
        em.emit(f"if {expr_to_py(stmt.cond)}:")
        em.indent += 1
        _emit_stmt(stmt.then_body, em, gpu_axes)
        em.indent -= 1
        if stmt.else_body is not None:
            em.emit("else:")
            em.indent += 1
            _emit_stmt(stmt.else_body, em, gpu_axes)
            em.indent -= 1
        return
    if isinstance(stmt, I.Allocate):
        em.emit(f"# allocate {stmt.buffer.name} in scope {stmt.scope!r} (machine-model marker)")
        _emit_stmt(stmt.body, em, gpu_axes)
        return
    if isinstance(stmt, I.AttrStmt):
        em.emit(f"# attr {stmt.key} = {stmt.value}")
        _emit_stmt(stmt.body, em, gpu_axes)
        return
    if isinstance(stmt, I.Evaluate):
        em.emit(f"# evaluate {stmt.expr!r}")
        return
    raise TypeError(f"cannot emit {type(stmt).__name__}")


class Kernel:
    """A compiled kernel: callable, with source / IR / launch geometry attached."""

    def __init__(self, fn, source: str, ir_stmt: I.Stmt, output: E.Tensor,
                 arg_names: Sequence[str], target: str, launch_dims: dict[str, int]):
        self._fn = fn
        self.source = source
        self.ir = ir_stmt
        self.output = output
        self.arg_names = tuple(arg_names)
        self.target = target
        self.launch_dims = dict(launch_dims)  # e.g. {"block.x": 128, "thread.x": 32}

    def __call__(self, *arrays: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        if len(arrays) != len(self.arg_names):
            raise TypeError(
                f"kernel expects {len(self.arg_names)} arrays "
                f"({', '.join(self.arg_names)}), got {len(arrays)}"
            )
        if out is None:
            out = np.empty(self.output.shape, dtype=self.output.dtype)
        if self.target == "gpu" and self.launch_dims:
            grid = [self.launch_dims.get(t, 1) for t in ("block.x", "block.y", "block.z")]
            block = [self.launch_dims.get(t, 1) for t in ("thread.x", "thread.y", "thread.z")]
            for bz in range(grid[2]):
                for by in range(grid[1]):
                    for bx in range(grid[0]):
                        for tz in range(block[2]):
                            for ty in range(block[1]):
                                for tx in range(block[0]):
                                    self._fn(out, *arrays, _tidx=(bx, by, bz, tx, ty, tz))
        else:
            self._fn(out, *arrays, _tidx=(0, 0, 0, 0, 0, 0))
        return out

    def __repr__(self):
        return f"Kernel(target={self.target}, args={self.arg_names}, out={self.output.shape})"


def build(schedule: Schedule, args: Sequence[E.Tensor], target: str = "cpu",
          name: str = "kernel") -> Kernel:
    """Lower ``schedule`` and compile an executable kernel.

    ``args`` lists the input placeholder tensors in call order.  The output
    tensor is the schedule's single output.
    """
    if target not in ("cpu", "gpu"):
        raise ValueError(f"unknown target {target!r}")
    output = schedule.outputs[0]
    stage = schedule[output]
    stmt = lower(schedule, output)

    # Thread-bound loop vars become parameters supplied by the grid iteration.
    gpu_axes: dict[str, str] = {}
    launch_dims: dict[str, int] = {}
    tag_to_slot = {"block.x": 0, "block.y": 1, "block.z": 2,
                   "thread.x": 3, "thread.y": 4, "thread.z": 5}
    for s in I.walk(stmt):
        if isinstance(s, I.For) and s.kind in tag_to_slot:
            gpu_axes[s.var.name] = s.kind
            launch_dims[s.kind] = s.extent
    if gpu_axes and target != "gpu":
        raise ValueError("schedule binds GPU thread tags but target is 'cpu'")

    em = _Emitter()
    for var_name, tag in gpu_axes.items():
        em.emit(f"{_pyname(var_name)} = _tidx[{tag_to_slot[tag]}]")
    _emit_stmt(stmt, em, gpu_axes)
    arg_names = [a.name for a in args]
    params = ", ".join([_pyname(output.name)] + [_pyname(a) for a in arg_names])
    src = f"def {name}({params}, _tidx=(0, 0, 0, 0, 0, 0)):\n" + em.source() + "\n"
    namespace: dict = {"math": math, "np": np}
    exec(compile(src, f"<tensorir:{name}>", "exec"), namespace)
    return Kernel(namespace[name], src, stmt, output, arg_names, target, launch_dims)
