"""Worker pool modeled on TVM's customized runtime thread pool.

The paper parallelizes CPU kernels "using the customized thread pool in TVM
runtime, which is lightweight and particularly efficient in handling the kind
of embarrassingly parallel workloads", and assigns multiple threads to
collectively work on *one graph partition at a time* to avoid LLC contention.

:class:`WorkPool` provides exactly that shape of API: a persistent pool with
``parallel_for`` (static chunking over an index range) and
``cooperative_for`` (all workers share one task's range).  Numpy releases the
GIL for large array operations, so the thread backend gives real concurrency
for the vectorized per-chunk work the templates dispatch.  For Python-level
combine work that *holds* the GIL, ``backend="process"`` (or
``FEATGRAPH_WORKERS_BACKEND=process``) backs the pool with OS processes;
:class:`SharedArray` stages inputs and output buffers in POSIX shared memory
so workers read and write them in place instead of pickling arrays around.
"""

from __future__ import annotations

import functools
import os
import threading
from concurrent.futures import Executor as _FutExecutor
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

__all__ = ["ExecStats", "WorkPool", "default_pool", "SharedArray",
           "WORKERS_BACKEND_ENV"]

#: environment selector for the pool backend: "thread" (default) | "process"
WORKERS_BACKEND_ENV = "FEATGRAPH_WORKERS_BACKEND"


class ExecStats:
    """Cumulative runtime counters for one kernel's executions: per-chunk
    UDF evaluation and aggregation wall-clock, bytes moved (gathered input
    plus written output, from the compiled program's load accounting), how
    many chunks ran on the compiled vs. interpreted path, and which
    aggregation strategy the last execution combined segments with.
    Thread-safe; shared between a template kernel and its compile record."""

    __slots__ = ("eval_seconds", "aggregate_seconds", "bytes_moved",
                 "chunks", "compiled_chunks", "agg_strategy", "_lock")

    def __init__(self):
        self.eval_seconds = 0.0
        self.aggregate_seconds = 0.0
        self.bytes_moved = 0
        self.chunks = 0
        self.compiled_chunks = 0
        self.agg_strategy: str | None = None
        self._lock = threading.Lock()

    def add_chunk(self, eval_seconds: float, aggregate_seconds: float = 0.0,
                  bytes_moved: int = 0, compiled: bool = False) -> None:
        with self._lock:
            self.eval_seconds += eval_seconds
            self.aggregate_seconds += aggregate_seconds
            self.bytes_moved += int(bytes_moved)
            self.chunks += 1
            if compiled:
                self.compiled_chunks += 1

    def note_strategy(self, name: str) -> None:
        """Record the aggregation strategy an execution plan resolved to."""
        with self._lock:
            self.agg_strategy = name

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "eval_seconds": self.eval_seconds,
                "aggregate_seconds": self.aggregate_seconds,
                "bytes_moved": self.bytes_moved,
                "chunks": self.chunks,
                "compiled_chunks": self.compiled_chunks,
                "agg_strategy": self.agg_strategy,
            }

    def __repr__(self):
        d = self.as_dict()
        return (f"ExecStats(chunks={d['chunks']} "
                f"(compiled {d['compiled_chunks']}), "
                f"eval={d['eval_seconds']:.4f}s, "
                f"agg={d['aggregate_seconds']:.4f}s, "
                f"moved={d['bytes_moved']}B)")


class SharedArray:
    """A numpy array backed by :mod:`multiprocessing.shared_memory`.

    The process-backed :class:`WorkPool` path ships only a small ``spec``
    tuple (block name, shape, dtype) to workers; both sides view the same
    physical pages, so large message/partial buffers cross the process
    boundary without pickling.  The creating side unlinks the block on
    context exit; attached views just close their mapping.

    Owned blocks are tracked in a process-wide registry until released:
    :meth:`live_segments` names every staged segment whose unlink has not
    run yet.  POSIX shm outlives the creating process, so a missed release
    is a resource leak the OS never reclaims -- the registry is what makes
    the strategies' release-on-all-paths contract (rule ``FG009`` in
    :mod:`repro.runtime.verify`) falsifiable: tests and the sanitizer
    executor assert it is empty after every combine, including ones whose
    workers raised.
    """

    _live_lock = threading.Lock()
    #: shm block names this process created and has not yet unlinked
    _live: set = set()

    def __init__(self, shm, shape, dtype, owner: bool):
        self._shm = shm
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._owner = owner
        self.array = np.ndarray(self.shape, dtype=self.dtype,
                                buffer=shm.buf)
        if owner:
            with SharedArray._live_lock:
                SharedArray._live.add(shm.name)

    @classmethod
    def live_segments(cls) -> tuple:
        """Names of owned shm blocks not yet released (sorted)."""
        with cls._live_lock:
            return tuple(sorted(cls._live))

    @property
    def spec(self) -> tuple:
        """Picklable handle: ``(name, shape, dtype_str)``."""
        return (self._shm.name, self.shape, self.dtype.str)

    @classmethod
    def empty(cls, shape, dtype) -> "SharedArray":
        from multiprocessing import shared_memory

        nbytes = max(1, int(np.prod(shape, dtype=np.int64))
                     * np.dtype(dtype).itemsize)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        return cls(shm, shape, dtype, owner=True)

    @classmethod
    def copy_of(cls, arr: np.ndarray) -> "SharedArray":
        sa = cls.empty(arr.shape, arr.dtype)
        sa.array[...] = arr
        return sa

    @classmethod
    def attach(cls, spec: tuple) -> "SharedArray":
        from multiprocessing import shared_memory

        name, shape, dtype = spec
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, shape, dtype, owner=False)

    def close(self) -> None:
        # drop the ndarray view before closing the mapping
        self.array = None
        self._shm.close()
        if self._owner:
            self._shm.unlink()
            with SharedArray._live_lock:
                SharedArray._live.discard(self._shm.name)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def _tagged_call(fn: Callable, item):
    """Process-pool wrapper: report which worker ran the item."""
    return os.getpid(), fn(item)


class WorkPool:
    """A persistent worker pool with static-chunked parallel-for.

    The worker count defaults to the ``FEATGRAPH_NUM_WORKERS`` environment
    variable when set, else ``min(16, cpu_count)``.  ``backend`` is
    ``"thread"`` (default) or ``"process"``; the default follows
    ``FEATGRAPH_WORKERS_BACKEND``.  Under the process backend every
    callable and item dispatched must be picklable (module-level functions;
    share arrays via :class:`SharedArray`).
    """

    def __init__(self, num_workers: int | None = None,
                 backend: str | None = None):
        if num_workers is None:
            env = os.environ.get("FEATGRAPH_NUM_WORKERS")
            if env:
                num_workers = int(env)
            else:
                num_workers = min(16, os.cpu_count() or 1)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if backend is None:
            backend = os.environ.get(WORKERS_BACKEND_ENV, "thread") or \
                "thread"
        if backend not in ("thread", "process"):
            raise ValueError(
                f"unknown WorkPool backend {backend!r} "
                "(expected 'thread' or 'process')")
        self.num_workers = num_workers
        self.backend = backend
        self._executor: _FutExecutor | None = None
        self._lock = threading.Lock()
        self._chunks_dispatched = 0
        self._worker_chunks: dict[str, int] = {}

    def _ensure(self) -> _FutExecutor:
        with self._lock:
            if self._executor is None:
                if self.backend == "process":
                    import multiprocessing

                    self._executor = ProcessPoolExecutor(
                        max_workers=self.num_workers,
                        mp_context=multiprocessing.get_context("fork"))
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.num_workers,
                        thread_name_prefix="repro-pool")
            return self._executor

    def _count_worker(self, worker: str, n: int = 1) -> None:
        with self._lock:
            self._worker_chunks[worker] = \
                self._worker_chunks.get(worker, 0) + n

    def _traced(self, fn: Callable) -> Callable:
        """Thread-backend wrapper booking which worker ran each call."""

        @functools.wraps(fn)
        def wrapped(*args, **kwargs):
            self._count_worker(threading.current_thread().name)
            return fn(*args, **kwargs)

        return wrapped

    def parallel_for(self, n: int, fn: Callable[[int, int], None],
                     num_chunks: int | None = None) -> None:
        """Run ``fn(lo, hi)`` over a static partition of ``range(n)``.

        ``fn`` receives half-open chunk bounds.  With one worker (or a tiny
        range) the call is executed inline, like TVM's serial fallback.
        """
        if n <= 0:
            return
        chunks = num_chunks or self.num_workers
        chunks = max(1, min(chunks, n))
        if chunks == 1 or self.num_workers == 1:
            with self._lock:
                self._chunks_dispatched += 1
            self._count_worker("inline")
            fn(0, n)
            return
        bounds = [(i * n) // chunks for i in range(chunks + 1)]
        ex = self._ensure()
        run = fn if self.backend == "process" else self._traced(fn)
        futures = [
            ex.submit(run, bounds[i], bounds[i + 1])
            for i in range(chunks)
            if bounds[i + 1] > bounds[i]
        ]
        with self._lock:
            self._chunks_dispatched += len(futures)
        for f in futures:
            f.result()

    def cooperative_for(self, tasks: Sequence, n_of: Callable, fn: Callable) -> None:
        """Process ``tasks`` one at a time, all workers sharing each task.

        For each task ``t``, ``fn(t, lo, hi)`` is invoked over chunks of
        ``range(n_of(t))``.  This is the LLC-contention-avoiding execution
        order: the pool never works on two graph partitions concurrently.
        """
        for t in tasks:
            self.parallel_for(n_of(t), lambda lo, hi, _t=t: fn(_t, lo, hi))

    def submit(self, fn: Callable, *args, **kwargs):
        """Schedule ``fn(*args, **kwargs)`` on the pool; returns a Future.

        The asynchronous entry point behind the mini-batch
        :class:`~repro.minidgl.sampling.BlockLoader`: sampling the next
        batch's blocks runs here while the main thread computes on the
        current batch.  Works with a single worker too (the one worker
        alternates), though overlap then needs the GIL-releasing numpy ops
        to dominate.
        """
        with self._lock:
            self._chunks_dispatched += 1
        if self.backend != "process":
            fn = self._traced(fn)
        return self._ensure().submit(fn, *args, **kwargs)

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to items concurrently and return results in order."""
        with self._lock:
            self._chunks_dispatched += len(items)
        if self.num_workers == 1 or len(items) <= 1:
            self._count_worker("inline", len(items))
            return [fn(x) for x in items]
        ex = self._ensure()
        if self.backend == "process":
            tagged = list(ex.map(functools.partial(_tagged_call, fn), items))
            for pid, _ in tagged:
                self._count_worker(f"pid-{pid}")
            return [r for _, r in tagged]
        return list(ex.map(self._traced(fn), items))

    def stats(self) -> dict:
        """Pool accounting: worker count, backend, chunks dispatched, and
        per-worker chunk counts (thread names, worker pids, or ``inline``
        for serial fallbacks)."""
        with self._lock:
            return {
                "workers": self.num_workers,
                "backend": self.backend,
                "chunks_dispatched": self._chunks_dispatched,
                "worker_chunks": dict(self._worker_chunks),
                "active": self._executor is not None,
            }

    def shutdown(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


_default: WorkPool | None = None
_default_lock = threading.Lock()


def default_pool() -> WorkPool:
    """Process-wide shared pool (created lazily)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = WorkPool()
        return _default
