"""Worker pool modeled on TVM's customized runtime thread pool.

The paper parallelizes CPU kernels "using the customized thread pool in TVM
runtime, which is lightweight and particularly efficient in handling the kind
of embarrassingly parallel workloads", and assigns multiple threads to
collectively work on *one graph partition at a time* to avoid LLC contention.

:class:`WorkPool` provides exactly that shape of API: a persistent pool with
``parallel_for`` (static chunking over an index range) and
``cooperative_for`` (all workers share one task's range).  Numpy releases the
GIL for large array operations, so the pool gives real concurrency for the
vectorized per-chunk work the templates dispatch.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

__all__ = ["ExecStats", "WorkPool", "default_pool"]


class ExecStats:
    """Cumulative runtime counters for one kernel's executions: per-chunk
    UDF evaluation and aggregation wall-clock, bytes moved (gathered input
    plus written output, from the compiled program's load accounting), and
    how many chunks ran on the compiled vs. interpreted path.  Thread-safe;
    shared between a template kernel and its compile record."""

    __slots__ = ("eval_seconds", "aggregate_seconds", "bytes_moved",
                 "chunks", "compiled_chunks", "_lock")

    def __init__(self):
        self.eval_seconds = 0.0
        self.aggregate_seconds = 0.0
        self.bytes_moved = 0
        self.chunks = 0
        self.compiled_chunks = 0
        self._lock = threading.Lock()

    def add_chunk(self, eval_seconds: float, aggregate_seconds: float = 0.0,
                  bytes_moved: int = 0, compiled: bool = False) -> None:
        with self._lock:
            self.eval_seconds += eval_seconds
            self.aggregate_seconds += aggregate_seconds
            self.bytes_moved += int(bytes_moved)
            self.chunks += 1
            if compiled:
                self.compiled_chunks += 1

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "eval_seconds": self.eval_seconds,
                "aggregate_seconds": self.aggregate_seconds,
                "bytes_moved": self.bytes_moved,
                "chunks": self.chunks,
                "compiled_chunks": self.compiled_chunks,
            }

    def __repr__(self):
        d = self.as_dict()
        return (f"ExecStats(chunks={d['chunks']} "
                f"(compiled {d['compiled_chunks']}), "
                f"eval={d['eval_seconds']:.4f}s, "
                f"agg={d['aggregate_seconds']:.4f}s, "
                f"moved={d['bytes_moved']}B)")


class WorkPool:
    """A persistent thread pool with static-chunked parallel-for.

    The worker count defaults to the ``FEATGRAPH_NUM_WORKERS`` environment
    variable when set, else ``min(16, cpu_count)``.
    """

    def __init__(self, num_workers: int | None = None):
        if num_workers is None:
            env = os.environ.get("FEATGRAPH_NUM_WORKERS")
            if env:
                num_workers = int(env)
            else:
                num_workers = min(16, os.cpu_count() or 1)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._chunks_dispatched = 0

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.num_workers, thread_name_prefix="repro-pool"
                )
            return self._executor

    def parallel_for(self, n: int, fn: Callable[[int, int], None],
                     num_chunks: int | None = None) -> None:
        """Run ``fn(lo, hi)`` over a static partition of ``range(n)``.

        ``fn`` receives half-open chunk bounds.  With one worker (or a tiny
        range) the call is executed inline, like TVM's serial fallback.
        """
        if n <= 0:
            return
        chunks = num_chunks or self.num_workers
        chunks = max(1, min(chunks, n))
        if chunks == 1 or self.num_workers == 1:
            with self._lock:
                self._chunks_dispatched += 1
            fn(0, n)
            return
        bounds = [(i * n) // chunks for i in range(chunks + 1)]
        ex = self._ensure()
        futures = [
            ex.submit(fn, bounds[i], bounds[i + 1])
            for i in range(chunks)
            if bounds[i + 1] > bounds[i]
        ]
        with self._lock:
            self._chunks_dispatched += len(futures)
        for f in futures:
            f.result()

    def cooperative_for(self, tasks: Sequence, n_of: Callable, fn: Callable) -> None:
        """Process ``tasks`` one at a time, all workers sharing each task.

        For each task ``t``, ``fn(t, lo, hi)`` is invoked over chunks of
        ``range(n_of(t))``.  This is the LLC-contention-avoiding execution
        order: the pool never works on two graph partitions concurrently.
        """
        for t in tasks:
            self.parallel_for(n_of(t), lambda lo, hi, _t=t: fn(_t, lo, hi))

    def submit(self, fn: Callable, *args, **kwargs):
        """Schedule ``fn(*args, **kwargs)`` on the pool; returns a Future.

        The asynchronous entry point behind the mini-batch
        :class:`~repro.minidgl.sampling.BlockLoader`: sampling the next
        batch's blocks runs here while the main thread computes on the
        current batch.  Works with a single worker too (the one worker
        alternates), though overlap then needs the GIL-releasing numpy ops
        to dominate.
        """
        with self._lock:
            self._chunks_dispatched += 1
        return self._ensure().submit(fn, *args, **kwargs)

    def map(self, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to items concurrently and return results in order."""
        with self._lock:
            self._chunks_dispatched += len(items)
        if self.num_workers == 1 or len(items) <= 1:
            return [fn(x) for x in items]
        ex = self._ensure()
        return list(ex.map(fn, items))

    def stats(self) -> dict:
        """Simple pool accounting: worker count and chunks dispatched."""
        with self._lock:
            return {
                "workers": self.num_workers,
                "chunks_dispatched": self._chunks_dispatched,
                "active": self._executor is not None,
            }

    def shutdown(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


_default: WorkPool | None = None
_default_lock = threading.Lock()


def default_pool() -> WorkPool:
    """Process-wide shared pool (created lazily)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = WorkPool()
        return _default
