"""Loop-nest intermediate representation.

The paper implements the SpMM/SDDMM templates "by directly constructing and
manipulating the IR" of TVM.  This module provides that IR: a small statement
language (loops, stores, conditionals, allocations) over the expression
language of :mod:`repro.tensorir.expr`.

Statements are immutable trees.  :func:`stmt_to_str` pretty-prints an IR tree
in a TVM-like surface syntax, which the tests use to assert that schedule
transformations produce the intended loop structures.
"""

from __future__ import annotations

from typing import Sequence

from repro.tensorir.expr import Expr, IterVar

__all__ = [
    "Stmt",
    "For",
    "Store",
    "SeqStmt",
    "IfThenElse",
    "Allocate",
    "AttrStmt",
    "Evaluate",
    "BufferRef",
    "stmt_to_str",
    "walk",
    "walk_with_path",
    "loop_vars",
]


class Stmt:
    """Base class of IR statements."""

    def children(self) -> tuple["Stmt", ...]:
        return ()


class BufferRef:
    """A named output/intermediate buffer with a shape and dtype."""

    def __init__(self, name: str, shape: tuple[int, ...], dtype: str = "float32"):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype

    def __repr__(self):
        return f"BufferRef({self.name}, {self.shape})"


class For(Stmt):
    """A loop over ``var`` in ``[0, extent)``.

    ``kind`` is one of ``serial``, ``parallel``, ``vectorize``, ``unroll``,
    or a thread-binding tag like ``blockIdx.x`` / ``threadIdx.x``.
    """

    SERIAL = "serial"
    PARALLEL = "parallel"
    VECTORIZE = "vectorize"
    UNROLL = "unroll"

    def __init__(self, var: IterVar, extent: int, body: Stmt, kind: str = SERIAL):
        self.var = var
        self.extent = int(extent)
        self.body = body
        self.kind = kind

    def children(self):
        return (self.body,)


class Store(Stmt):
    """``buffer[indices] = value`` (or combine-update when ``combiner`` set)."""

    def __init__(
        self,
        buffer: BufferRef,
        value: Expr,
        indices: Sequence[Expr],
        combiner: str | None = None,
    ):
        self.buffer = buffer
        self.value = value
        self.indices = tuple(indices)
        self.combiner = combiner  # None = plain store; "sum"/"max"/... = update


class SeqStmt(Stmt):
    """Sequential composition of statements."""

    def __init__(self, stmts: Sequence[Stmt]):
        self.stmts = tuple(stmts)

    def children(self):
        return self.stmts


class IfThenElse(Stmt):
    """Conditional statement; ``else_body`` may be None."""

    def __init__(self, cond: Expr, then_body: Stmt, else_body: Stmt | None = None):
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body

    def children(self):
        if self.else_body is None:
            return (self.then_body,)
        return (self.then_body, self.else_body)


class Allocate(Stmt):
    """Allocate a scratch buffer (e.g. GPU shared memory) visible in ``body``."""

    def __init__(self, buffer: BufferRef, scope: str, body: Stmt):
        self.buffer = buffer
        self.scope = scope  # "global" | "shared" | "local"
        self.body = body

    def children(self):
        return (self.body,)


class AttrStmt(Stmt):
    """Attach a key/value attribute to a subtree (thread extents, pragmas)."""

    def __init__(self, key: str, value, body: Stmt):
        self.key = key
        self.value = value
        self.body = body

    def children(self):
        return (self.body,)


class Evaluate(Stmt):
    """Evaluate an expression for effect (rare; used for barriers markers)."""

    def __init__(self, expr):
        self.expr = expr


def walk(stmt: Stmt):
    """Pre-order traversal of an IR tree."""
    yield stmt
    for c in stmt.children():
        yield from walk(c)


def walk_with_path(stmt: Stmt, _path: tuple[Stmt, ...] = ()):
    """Pre-order traversal yielding ``(node, path)`` pairs.

    ``path`` is the tuple of ancestor statements from the root down to (but
    excluding) ``node``, so validators and tests can reason about nesting
    context (e.g. "is this store under a reduce loop?").
    """
    yield stmt, _path
    child_path = _path + (stmt,)
    for c in stmt.children():
        yield from walk_with_path(c, child_path)


def loop_vars(stmt: Stmt) -> list[IterVar]:
    """All loop variables in pre-order, one entry per ``For`` node."""
    return [node.var for node in walk(stmt) if isinstance(node, For)]


def _expr_str(e) -> str:
    return repr(e)


def stmt_to_str(stmt: Stmt, indent: int = 0) -> str:
    """Pretty-print an IR tree."""
    pad = "  " * indent
    if isinstance(stmt, For):
        head = {"serial": "for", "parallel": "parallel for",
                "vectorize": "vectorized for", "unroll": "unrolled for"}.get(
            stmt.kind, f"for[{stmt.kind}]"
        )
        return (
            f"{pad}{head} {stmt.var.name} in range({stmt.extent}):\n"
            + stmt_to_str(stmt.body, indent + 1)
        )
    if isinstance(stmt, Store):
        idx = ", ".join(_expr_str(i) for i in stmt.indices)
        if stmt.combiner is None:
            return f"{pad}{stmt.buffer.name}[{idx}] = {_expr_str(stmt.value)}"
        return f"{pad}{stmt.buffer.name}[{idx}] <{stmt.combiner}>= {_expr_str(stmt.value)}"
    if isinstance(stmt, SeqStmt):
        return "\n".join(stmt_to_str(s, indent) for s in stmt.stmts)
    if isinstance(stmt, IfThenElse):
        out = f"{pad}if {_expr_str(stmt.cond)}:\n" + stmt_to_str(stmt.then_body, indent + 1)
        if stmt.else_body is not None:
            out += f"\n{pad}else:\n" + stmt_to_str(stmt.else_body, indent + 1)
        return out
    if isinstance(stmt, Allocate):
        return (
            f"{pad}allocate {stmt.buffer.name}{list(stmt.buffer.shape)} "
            f"scope={stmt.scope}\n" + stmt_to_str(stmt.body, indent)
        )
    if isinstance(stmt, AttrStmt):
        return f"{pad}// attr {stmt.key} = {stmt.value}\n" + stmt_to_str(stmt.body, indent)
    if isinstance(stmt, Evaluate):
        return f"{pad}evaluate({_expr_str(stmt.expr)})"
    raise TypeError(f"unknown stmt {type(stmt).__name__}")
