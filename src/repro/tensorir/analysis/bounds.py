"""Static bounds checking of buffer indices against declared shapes.

Every access in the :class:`~.accessmap.AccessMap` carries per-dimension
:class:`~.accessmap.IndexFn` summaries; here we evaluate each one over the
enclosing loop extents -- refined by active guards -- and flag indices that
*provably* escape the buffer's declared shape (FG002).

Provability is the point.  A split with a non-dividing factor produces an
index ``outer * factor + inner`` whose raw range overshoots the axis
extent, but the lowering wraps the store in a guard ``index < extent``;
guard refinement clamps the interval back inside, so legal imperfect
splits stay clean.  An *over-split* -- tile factors whose product exceeds
the axis, applied without a guard -- keeps its overshooting range and is
reported.  Conversely, nothing is reported for index expressions the
analysis cannot pin down exactly (gathers, opaque arithmetic): a lint that
cries wolf on every indirection would be ignored, so FG002 fires only on
*exact* affine indices over bounded loop ranges, where the offending
iteration demonstrably exists.
"""

from __future__ import annotations

from .accessmap import AccessMap
from .diagnostics import Diagnostic, Severity

__all__ = ["check_bounds"]


def check_bounds(amap: AccessMap) -> list[Diagnostic]:
    """FG002: indices provably outside the declared buffer shape."""
    out: list[Diagnostic] = []
    for acc in amap.accesses:
        for d, fn in enumerate(acc.index_fns):
            if not fn.exact:
                continue  # can't prove anything about opaque indices
            iv = acc.dim_interval(d)
            if not iv.bounded:
                continue
            extent = acc.shape[d]
            if iv.hi >= extent or iv.lo < 0:
                out.append(Diagnostic(
                    rule="FG002", severity=Severity.ERROR, loc=acc.loc,
                    message=(f"{acc.kind} index {fn.render()} of "
                             f"{acc.buffer_name} dim {d} spans {iv} but the "
                             f"declared extent is {extent}; check split/tile "
                             f"factors against the axis length")))
    return out
