"""Diagnostic objects, the rule catalogue, and analysis strict mode.

Every finding of the dataflow analyses (:mod:`repro.tensorir.analysis`) is a
structured :class:`Diagnostic`: a stable rule id (``FG001``, ``FG002``, ...),
a severity, an IR location string, and a human-readable message.  Diagnostics
are collected into an :class:`AnalysisReport`, which the compile pipeline
attaches to the kernel's :class:`~repro.core.compile.CompileRecord` and which
the lint CLI renders.

Strict mode (:func:`set_strict` / :func:`strict` / the
``FEATGRAPH_ANALYSIS_STRICT`` environment variable) turns error-severity
diagnostics into compile failures (:class:`AnalysisError`) inside the
pipeline's ``analyze`` pass.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "AnalysisError",
    "RULES",
    "strict_enabled",
    "set_strict",
    "strict",
]


class Severity:
    """Diagnostic severity levels, ordered ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    _ORDER = {"error": 2, "warning": 1, "info": 0}

    @classmethod
    def rank(cls, severity: str) -> int:
        return cls._ORDER[severity]


#: the rule catalogue: id -> (default severity, one-line description)
RULES: dict[str, tuple[str, str]] = {
    "FG001": (Severity.ERROR,
              "write-write race: a plain (non-combiner) store can hit the "
              "same buffer element from distinct iterations of a "
              "parallel/thread-bound axis"),
    "FG002": (Severity.ERROR,
              "static out-of-bounds: a buffer index provably escapes the "
              "buffer's declared shape under the loop extents and guards"),
    "FG003": (Severity.ERROR,
              "shared-memory overflow: a GPU staging buffer exceeds the "
              "simulated per-block shared-memory capacity"),
    "FG004": (Severity.WARNING,
              "cache-footprint: a CPU staging buffer's working set exceeds "
              "the simulated last-level cache"),
    "FG005": (Severity.INFO,
              "footprint note: estimated working set of an allocation or "
              "cooperative-reduction staging buffer"),
    # FG006-FG010 are the execution-plan verifier's rules
    # (:mod:`repro.runtime.verify`): they judge the runtime layer --
    # ExecutionPlan chunking, strategy sharding, sink buffers, shared
    # memory, gather index arrays -- not the lowered loop-nest IR.
    "FG006": (Severity.ERROR,
              "shard disjointness: a plan's parallel chunks or strategy "
              "shards can write the same destination row, or a chunk "
              "boundary splits a destination segment across workers"),
    "FG007": (Severity.INFO,
              "determinism classification: whether a plan's reduction is "
              "bit-identical, reassociated-fp, or nondeterministic under "
              "its strategy's combine order"),
    "FG008": (Severity.ERROR,
              "buffer lifetime: a plan stage reads a chunk-local value "
              "before any stage defines it, sink buffers alias within a "
              "task, or a compiled program writes out= into a live or "
              "bound buffer"),
    "FG009": (Severity.ERROR,
              "shared-memory lifecycle: a process-backed plan stages "
              "SharedArray segments without a release that is reached on "
              "all paths, including worker exceptions"),
    "FG010": (Severity.ERROR,
              "gather bounds: a GatherPlan index array escapes the extent "
              "its graph-axis role implies, or chunk bounds escape the "
              "gathered edge domain"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One structured analysis finding."""

    #: rule id from :data:`RULES`, e.g. ``"FG001"``
    rule: str
    #: ``"error"`` / ``"warning"`` / ``"info"``
    severity: str
    #: IR location: the enclosing loop path plus the offending node,
    #: e.g. ``"for e[parallel] > store out"``
    loc: str
    #: human-readable explanation of the finding
    message: str

    def __post_init__(self):
        if self.rule not in RULES:
            raise ValueError(f"unknown rule id {self.rule!r}")
        if self.severity not in Severity._ORDER:
            raise ValueError(f"unknown severity {self.severity!r}")

    def render(self) -> str:
        return f"{self.rule} {self.severity:<7} {self.loc}: {self.message}"

    def as_dict(self) -> dict:
        """JSON-ready mapping (the ``--json`` lint CLIs emit these)."""
        return {"rule": self.rule, "severity": self.severity,
                "loc": self.loc, "message": self.message}

    def __str__(self):
        return self.render()


@dataclass
class AnalysisReport:
    """All diagnostics of one analysis run over a lowered loop nest.

    ``footprints`` maps staging-buffer names to their estimated working-set
    bytes (see :mod:`repro.tensorir.analysis.footprint`).
    """

    diagnostics: tuple[Diagnostic, ...] = ()
    #: buffer name -> (scope, estimated bytes)
    footprints: dict = field(default_factory=dict)
    #: analysis target: "cpu" / "gpu" / None
    target: str | None = None

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity == Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics
                     if d.severity == Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    def by_rule(self, rule: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule == rule)

    def sorted(self) -> tuple[Diagnostic, ...]:
        """Diagnostics ordered most severe first (stable within severity)."""
        return tuple(sorted(
            self.diagnostics,
            key=lambda d: (-Severity.rank(d.severity), d.rule, d.loc)))

    def as_dict(self) -> dict:
        """JSON-ready mapping: diagnostics (most severe first) + counts."""
        return {
            "target": self.target,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.as_dict() for d in self.sorted()],
        }

    def render(self) -> str:
        if not self.diagnostics:
            return "analysis clean: no diagnostics"
        return "\n".join(d.render() for d in self.sorted())

    def __str__(self):
        return self.render()


class AnalysisError(ValueError):
    """Raised by the ``analyze`` pass in strict mode when error-severity
    diagnostics are present."""

    def __init__(self, report: AnalysisReport):
        self.report = report
        errors = report.errors
        head = (f"analysis found {len(errors)} error-severity "
                f"diagnostic{'s' if len(errors) != 1 else ''}")
        super().__init__(head + "\n" + "\n".join(d.render() for d in errors))


# ----------------------------------------------------------------------
# strict mode
# ----------------------------------------------------------------------

_STRICT = os.environ.get("FEATGRAPH_ANALYSIS_STRICT", "") not in ("", "0",
                                                                  "false")


def strict_enabled() -> bool:
    """Whether error diagnostics currently fail compilation."""
    return _STRICT


def set_strict(enabled: bool) -> bool:
    """Set strict mode process-wide; returns the previous value."""
    global _STRICT
    old = _STRICT
    _STRICT = bool(enabled)
    return old


@contextmanager
def strict(enabled: bool = True):
    """Temporarily enable (or disable) strict analysis mode."""
    old = set_strict(enabled)
    try:
        yield
    finally:
        set_strict(old)
