"""Static dataflow analysis over the lowered loop-nest IR.

This package is the compile pipeline's ``analyze`` pass (between
``validate`` and ``simplify``): where :mod:`repro.tensorir.validate`
checks *structural* legality, the analyses here check *dataflow*
properties the paper's scheduling freedom puts at risk:

- :mod:`~repro.tensorir.analysis.races` -- write-write races across
  ``parallel``/thread-bound axes (FG001): the edge- vs. vertex-parallel
  aggregation hazard of Sec. III-B.
- :mod:`~repro.tensorir.analysis.bounds` -- statically provable
  out-of-bounds indices (FG002): over-splits and bad tile factors.
- :mod:`~repro.tensorir.analysis.footprint` -- staging-buffer working
  sets against the :mod:`repro.hwsim` capacities (FG003/FG004/FG005).

All three share the symbolic access-map analysis in
:mod:`~repro.tensorir.analysis.accessmap`.  Findings are
:class:`Diagnostic` objects collected into an :class:`AnalysisReport`;
in strict mode (:func:`set_strict`, :func:`strict`, or the
``FEATGRAPH_ANALYSIS_STRICT`` environment variable) error-severity
diagnostics raise :class:`AnalysisError` inside the pipeline.

Entry points::

    report = analyze_ir(stmt, target="gpu")   # a lowered loop nest
    report = analyze_kernel(kernel)           # a compiled kernel object
    python -m repro.tensorir.analysis         # the lint CLI
"""

from __future__ import annotations

from .accessmap import (
    Access,
    AccessMap,
    AllocSite,
    IndexFn,
    Interval,
    LoopCtx,
    affine_of,
    collect_access_map,
    is_parallel_kind,
)
from .bounds import check_bounds
from .diagnostics import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    RULES,
    Severity,
    set_strict,
    strict,
    strict_enabled,
)
from .footprint import buffer_bytes, check_footprint
from .races import check_races

__all__ = [
    "analyze_ir",
    "analyze_kernel",
    "Access",
    "AccessMap",
    "AllocSite",
    "AnalysisError",
    "AnalysisReport",
    "Diagnostic",
    "IndexFn",
    "Interval",
    "LoopCtx",
    "RULES",
    "Severity",
    "affine_of",
    "buffer_bytes",
    "check_bounds",
    "check_footprint",
    "check_races",
    "collect_access_map",
    "is_parallel_kind",
    "set_strict",
    "strict",
    "strict_enabled",
]


def analyze_ir(stmt, target: str | None = None) -> AnalysisReport:
    """Run every dataflow check over one lowered loop nest."""
    amap = collect_access_map(stmt)
    diags: list[Diagnostic] = []
    diags.extend(check_races(amap))
    diags.extend(check_bounds(amap))
    fp_diags, footprints = check_footprint(amap, target=target)
    diags.extend(fp_diags)
    return AnalysisReport(diagnostics=tuple(diags), footprints=footprints,
                          target=target)


def analyze_kernel(kernel) -> AnalysisReport:
    """Analyze a compiled kernel, reusing its attached report when present.

    Kernels compiled through :class:`repro.core.compile.CompilePipeline`
    carry the ``analyze`` pass's report in their compile record; kernels
    built some other way are analyzed from their lowered IR on the spot.
    """
    record = getattr(kernel, "_compile_record", None)
    if record is not None:
        report = record.artifacts.get("analysis")
        if report is not None:
            return report
    target = getattr(kernel, "target", None)
    return analyze_ir(kernel.lowered_ir(), target=target)
