"""Write-write race detection over parallel and thread-bound axes.

The paper's central correctness hazard (Sec. III-B): an **edge-parallel**
SpMM schedule assigns edges to concurrent workers, and two edges sharing a
destination row scatter into the same ``out`` element -- the aggregation
must be an atomic/combiner update or the result is a data race.  The
**vertex-parallel** form partitions destination rows across workers, so
every worker owns its output rows and a plain store is fine.

The detector runs over the :class:`~.accessmap.AccessMap`: for every plain
(non-combiner) store enclosed by a ``parallel``/``block.*``/``thread.*``
loop, it tries to *prove* that distinct iterations of that loop write
distinct buffer elements.  The proof obligation per parallel variable ``p``
is the standard injectivity criterion on some index dimension::

    index_d = c * p + remainder        (c != 0, remainder independent of p)
    width(remainder) < |c|             -- distinct p can never collide

which handles direct indexing (``out[v, f]``: c=1, remainder width 0) and
tiled indexing (``out[v_out * 32 + v_in]``: c=32, remainder width 31).
Scatter through an index gather (``out[A_indices[e], f]``) leaves ``p`` in
the residual dependence set -- unprovable, and genuinely racy when the
gather is a graph adjacency (many edges per destination).  Gathers through
arrays known to be **injective** (the edge-id permutations ``A_edge_ids`` /
``A_src`` / ``A_dst`` hold each CSR position exactly once) are peeled: the
store is race-free iff the gather's argument is itself injective in ``p``.

Combiner stores are exempt by design: the runtime treats them as atomic
read-modify-write updates (Sec. III-B's "atomic aggregation"), which is
exactly the paper's prescription for edge-parallel schedules.
"""

from __future__ import annotations

from repro.tensorir import expr as E
from repro.tensorir.simplify import simplify

from .accessmap import Access, AccessMap, IndexFn, LoopCtx, affine_of
from .diagnostics import Diagnostic, Severity

__all__ = ["check_races", "INJECTIVE_INDEX_ARRAYS"]

#: index arrays whose gather is injective: each holds a permutation of CSR
#: edge positions (one entry per edge, no duplicates).  ``A_indices`` --
#: column indices, i.e. source vertices -- is deliberately NOT here: many
#: edges share a source/destination, which is the whole point of FG001.
INJECTIVE_INDEX_ARRAYS = frozenset({"A_edge_ids"})


def check_races(amap: AccessMap) -> list[Diagnostic]:
    """FG001: plain stores that may collide across a parallel axis."""
    out: list[Diagnostic] = []
    for acc in amap.writes():
        if acc.combiner is not None:
            continue  # atomic/combiner update: safe under any parallel axis
        for loop in acc.loops:
            if not (loop.parallel and loop.extent > 1):
                continue
            if not _store_injective_in(acc, loop):
                out.append(_race_diag(acc, loop))
    return out


def _race_diag(acc: Access, loop: LoopCtx) -> Diagnostic:
    idx = ", ".join(fn.render() for fn in acc.index_fns)
    return Diagnostic(
        rule="FG001", severity=Severity.ERROR, loc=acc.loc,
        message=(f"plain store to {acc.buffer_name}[{idx}] is not provably "
                 f"distinct across iterations of {loop.kind!r} axis "
                 f"{loop.name!r} (extent {loop.extent}); use an atomic "
                 f"combiner or a {loop.name}-owning parallelization"))


def _store_injective_in(acc: Access, loop: LoopCtx) -> bool:
    """True if distinct iterations of ``loop`` provably write distinct
    elements: some index dimension separates them."""
    env = acc.env()
    for d in range(len(acc.index_fns)):
        if _dim_injective(acc.index_fns[d], acc.indices[d], loop, env):
            return True
    return False


def _dim_injective(fn: IndexFn, raw_index: E.Expr, loop: LoopCtx,
                   env: dict) -> bool:
    if _affine_injective(fn, loop, env):
        return True
    # Peel one injective gather: out[A_edge_ids[arg]] is injective in p
    # iff arg is.  (A permutation composed with an injection is injective.)
    node = simplify(raw_index)
    if (isinstance(node, E.TensorElem)
            and node.tensor.name in INJECTIVE_INDEX_ARRAYS
            and len(node.indices) == 1):
        arg_fn = affine_of(node.indices[0], env)
        return _affine_injective(arg_fn, loop, env)
    return False


def _affine_injective(fn: IndexFn, loop: LoopCtx, env: dict) -> bool:
    """The ``width(remainder) < |c|`` criterion for one affine index."""
    p = loop.name
    c = fn.coeff(p)
    if c == 0 or p in fn.resid_deps:
        return False
    remainder = fn.resid.width
    for name, coeff in fn.coeffs:
        if name == p:
            continue
        rng = env.get(name)
        if rng is None or not rng.bounded:
            return False
        remainder += abs(coeff) * rng.width
    return remainder < abs(c)
