"""Symbolic index and access-map analysis over the lowered loop-nest IR.

The dataflow checks (:mod:`~repro.tensorir.analysis.races`,
:mod:`~repro.tensorir.analysis.bounds`) share one abstraction built here:
every buffer access in a loop nest is summarized as a vector of
:class:`IndexFn` objects -- affine-ish functions of the enclosing loop
variables and declared free variables (``src``/``dst``/``eid``), with a
residual interval absorbing whatever is not affine (gathers through index
arrays, ``//``/``%`` arithmetic, intrinsic calls).

Two facts make this precise enough to be useful:

- split/fuse index arithmetic produced by
  :func:`repro.tensorir.lower.lower` is genuinely affine
  (``outer * factor + inner``), so tile factors and over-splits analyze
  exactly;
- the graph templates' indirection (``A_indices[e]``) is *not* affine, and
  the analysis records exactly which loop variables the opaque part depends
  on -- which is what the race detector needs to refuse to prove
  edge-parallel scatter writes safe.

:func:`collect_access_map` walks a statement tree once and returns an
:class:`AccessMap`: every read and write with its index functions, the
enclosing loop context (including ``parallel``/``bind`` annotations carried
by :class:`~repro.tensorir.ir.For` kinds), the active guard predicates, and
every :class:`~repro.tensorir.ir.Allocate` staging scope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.tensorir import expr as E
from repro.tensorir import ir as I
from repro.tensorir.simplify import simplify

__all__ = [
    "Interval",
    "IndexFn",
    "LoopCtx",
    "Access",
    "AllocSite",
    "AccessMap",
    "affine_of",
    "collect_access_map",
    "PARALLEL_KINDS",
    "is_parallel_kind",
]

_INF = math.inf

#: loop kinds whose iterations may execute concurrently
PARALLEL_KINDS = ("parallel", "block.x", "block.y", "block.z",
                  "thread.x", "thread.y", "thread.z")


def is_parallel_kind(kind: str) -> bool:
    """True for loop kinds whose iterations may run concurrently.

    ``tree_reduce[...]`` loops are cooperative reductions with their own
    combining discipline, and ``vectorize``/``unroll`` are sequential in
    this runtime; neither counts.
    """
    return kind in PARALLEL_KINDS


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]``; ``+-inf`` for unknown ends."""

    lo: float
    hi: float

    TOP: "Interval" = None  # set below

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def width(self) -> float:
        """``hi - lo`` (0 for a point, inf when either end is unknown)."""
        return self.hi - self.lo

    @property
    def bounded(self) -> bool:
        return self.lo > -_INF and self.hi < _INF

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def __mul__(self, other: "Interval") -> "Interval":
        cands = [a * b for a in (self.lo, self.hi) for b in (other.lo, other.hi)
                 if not (math.isnan(a * b))]
        return Interval(min(cands), max(cands))

    def scaled(self, c: int) -> "Interval":
        if c >= 0:
            return Interval(self.lo * c, self.hi * c)
        return Interval(self.hi * c, self.lo * c)

    def floordiv(self, c: int) -> "Interval":
        if c == 0:
            return Interval.TOP
        ends = sorted((_fdiv(self.lo, c), _fdiv(self.hi, c)))
        return Interval(ends[0], ends[1])

    def mod(self, c: int) -> "Interval":
        if c == 0:
            return Interval.TOP
        m = abs(c)
        if self.bounded and self.lo >= 0 and self.hi < m:
            return self  # already reduced
        return Interval(0, m - 1)

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def __repr__(self):
        fmt = lambda v: "?" if abs(v) == _INF else str(int(v))  # noqa: E731
        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"


Interval.TOP = Interval(-_INF, _INF)


def _fdiv(a: float, c: int) -> float:
    if abs(a) == _INF:
        return a if c > 0 else -a
    return a // c


@dataclass(frozen=True)
class IndexFn:
    """``index = sum(coeffs[v] * v) + const + residual``.

    ``coeffs`` maps variable names (loop vars or declared free vars whose
    range the environment knows) to integer coefficients.  ``resid`` is the
    interval of the non-affine remainder and ``resid_deps`` names every
    variable that remainder depends on -- when a parallel loop variable
    lands in ``resid_deps``, no injectivity claim about it can be proven.
    """

    coeffs: tuple  # ((name, coeff), ...), sorted by name
    const: int
    resid: Interval
    resid_deps: frozenset

    @property
    def exact(self) -> bool:
        """True when the index is a pure affine function of its variables."""
        return self.resid.is_point and not self.resid_deps

    def coeff(self, name: str) -> int:
        for n, c in self.coeffs:
            if n == name:
                return c
        return 0

    def depends_on(self, name: str) -> bool:
        return self.coeff(name) != 0 or name in self.resid_deps

    def interval(self, env: dict[str, Interval]) -> Interval:
        """Range of the index over the variable ranges in ``env``."""
        out = Interval(self.const, self.const) + self.resid
        for name, c in self.coeffs:
            out = out + env.get(name, Interval.TOP).scaled(c)
        return out

    def drop(self, name: str) -> "IndexFn":
        """The same function with variable ``name``'s affine term removed."""
        return IndexFn(tuple((n, c) for n, c in self.coeffs if n != name),
                       self.const, self.resid, self.resid_deps)

    def render(self) -> str:
        parts = [f"{c}*{n}" if c != 1 else n for n, c in self.coeffs]
        if self.const or not parts:
            parts.append(str(self.const))
        text = " + ".join(parts)
        if not (self.resid.is_point and self.resid.lo == 0):
            text += f" + {self.resid}"
        return text


def _fn(coeffs: dict[str, int] | None = None, const: int = 0,
        resid: Interval | None = None,
        deps: frozenset | None = None) -> IndexFn:
    coeffs = {n: c for n, c in (coeffs or {}).items() if c != 0}
    return IndexFn(tuple(sorted(coeffs.items())), const,
                   resid if resid is not None else Interval(0, 0),
                   deps if deps is not None else frozenset())


def _opaque(interval: Interval, deps: frozenset) -> IndexFn:
    return _fn(resid=interval, deps=deps)


def _expr_deps(node: E.Expr) -> frozenset:
    """Names of every variable (iter or free) an expression depends on."""
    names: set[str] = set()

    def walk(e: E.Expr):
        if isinstance(e, (E.IterVar, E.Var)):
            names.add(e.name)
        for c in e.children():
            walk(c)

    walk(node)
    return frozenset(names)


def affine_of(node: E.Expr, env: dict[str, Interval] | None = None) -> IndexFn:
    """Summarize an index expression as an :class:`IndexFn`.

    ``env`` supplies variable ranges used only to bound the residual of
    non-affine subtrees (``//``, ``%``, gathers); affine structure itself is
    range-independent.
    """
    env = env or {}
    if isinstance(node, (E.IntImm,)):
        return _fn(const=node.value)
    if isinstance(node, E.FloatImm):
        v = node.value
        if float(v).is_integer():
            return _fn(const=int(v))
        return _opaque(Interval.TOP, frozenset())
    if isinstance(node, (E.IterVar, E.Var)):
        return _fn({node.name: 1})
    if isinstance(node, E.Cast):
        return affine_of(node.value, env)
    if isinstance(node, E.BinOp):
        a = affine_of(node.a, env)
        b = affine_of(node.b, env)
        if node.op == "+":
            return _combine(a, b, 1)
        if node.op == "-":
            return _combine(a, b, -1)
        if node.op == "*":
            for lhs, rhs in ((a, b), (b, a)):
                if _is_const_fn(lhs):
                    return _scale(rhs, lhs.const)
            iv = _interval_of_fn(a, env) * _interval_of_fn(b, env)
            return _opaque(iv, _expr_deps(node))
        if node.op in ("//", "%"):
            if _is_const_fn(b):
                base = _interval_of_fn(a, env)
                iv = (base.floordiv(b.const) if node.op == "//"
                      else base.mod(b.const))
                return _opaque(iv, _expr_deps(node.a))
            return _opaque(Interval.TOP, _expr_deps(node))
        if node.op in ("max", "min"):
            ia, ib = _interval_of_fn(a, env), _interval_of_fn(b, env)
            if node.op == "max":
                iv = Interval(max(ia.lo, ib.lo), max(ia.hi, ib.hi))
            else:
                iv = Interval(min(ia.lo, ib.lo), min(ia.hi, ib.hi))
            return _opaque(iv, _expr_deps(node))
        return _opaque(Interval.TOP, _expr_deps(node))  # comparisons, "/"
    # gathers, intrinsic calls, selects, reductions: opaque
    return _opaque(Interval.TOP, _expr_deps(node))


def _is_const_fn(fn: IndexFn) -> bool:
    return not fn.coeffs and fn.exact


def _combine(a: IndexFn, b: IndexFn, sign: int) -> IndexFn:
    coeffs = dict(a.coeffs)
    for n, c in b.coeffs:
        coeffs[n] = coeffs.get(n, 0) + sign * c
    resid = a.resid + b.resid.scaled(sign)
    return _fn(coeffs, a.const + sign * b.const, resid,
               a.resid_deps | b.resid_deps)


def _scale(fn: IndexFn, c: int) -> IndexFn:
    return _fn({n: co * c for n, co in fn.coeffs}, fn.const * c,
               fn.resid.scaled(c), fn.resid_deps)


def _interval_of_fn(fn: IndexFn, env: dict[str, Interval]) -> Interval:
    return fn.interval(env)


# ----------------------------------------------------------------------
# guard refinement
# ----------------------------------------------------------------------

def _canon(node: E.Expr) -> str:
    return repr(simplify(node))


def guard_bounds(cond: E.Expr,
                 env: dict[str, Interval]) -> dict[str, Interval]:
    """Extract ``canonical-expr -> interval`` refinements from a guard.

    Handles the comparison shapes the lowering emits (``e < c``, ``e <= c``,
    ``e > c``, ``e >= c`` with a constant-ranged right-hand side) plus the
    mirrored forms.  Unrecognized predicates refine nothing.
    """
    out: dict[str, Interval] = {}
    if not isinstance(cond, E.BinOp) or cond.op not in ("<", "<=", ">", ">="):
        return out
    lhs, rhs, op = cond.a, cond.b, cond.op
    rhs_iv = affine_of(rhs, env).interval(env)
    lhs_iv = affine_of(lhs, env).interval(env)
    if rhs_iv.bounded:
        if op == "<":
            out[_canon(lhs)] = Interval(-_INF, rhs_iv.hi - 1)
        elif op == "<=":
            out[_canon(lhs)] = Interval(-_INF, rhs_iv.hi)
        elif op == ">":
            out[_canon(lhs)] = Interval(rhs_iv.lo + 1, _INF)
        else:
            out[_canon(lhs)] = Interval(rhs_iv.lo, _INF)
    if lhs_iv.bounded:
        if op == "<":
            out.setdefault(_canon(rhs), Interval(lhs_iv.lo + 1, _INF))
        elif op == "<=":
            out.setdefault(_canon(rhs), Interval(lhs_iv.lo, _INF))
        elif op == ">":
            out.setdefault(_canon(rhs), Interval(-_INF, lhs_iv.hi - 1))
        else:
            out.setdefault(_canon(rhs), Interval(-_INF, lhs_iv.hi))
    return out


# ----------------------------------------------------------------------
# access collection
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LoopCtx:
    """One enclosing loop at an access site."""

    name: str
    extent: int
    kind: str

    @property
    def parallel(self) -> bool:
        return is_parallel_kind(self.kind)


@dataclass(frozen=True)
class Access:
    """One read or write of a buffer, with its analyzed index vector."""

    buffer_name: str
    shape: tuple
    kind: str                       # "read" | "write"
    combiner: str | None            # writes only; None = plain store
    indices: tuple                  # the raw index Exprs
    index_fns: tuple                # one IndexFn per dimension
    loops: tuple                    # enclosing LoopCtx, outermost first
    refinements: tuple              # ((canonical expr, Interval), ...)
    loc: str

    def env(self) -> dict[str, Interval]:
        """Variable ranges visible at this access site."""
        return {lp.name: Interval(0, lp.extent - 1) for lp in self.loops}

    def dim_interval(self, d: int) -> Interval:
        """Guard-refined value range of index dimension ``d``."""
        iv = self.index_fns[d].interval(self.env())
        key = _canon(self.indices[d])
        for ckey, bound in self.refinements:
            if ckey == key:
                iv = iv.intersect(bound)
        return iv


@dataclass(frozen=True)
class AllocSite:
    """One ``Allocate`` staging scope."""

    buffer_name: str
    shape: tuple
    dtype: str
    scope: str
    loc: str


@dataclass
class AccessMap:
    """Every access and allocation of one loop nest."""

    accesses: list = field(default_factory=list)
    allocs: list = field(default_factory=list)

    def writes(self):
        return [a for a in self.accesses if a.kind == "write"]

    def reads(self):
        return [a for a in self.accesses if a.kind == "read"]

    def by_buffer(self) -> dict[str, list]:
        out: dict[str, list] = {}
        for a in self.accesses:
            out.setdefault(a.buffer_name, []).append(a)
        return out


class _Collector:
    def __init__(self):
        self.map = AccessMap()

    def run(self, stmt: I.Stmt):
        self._stmt(stmt, loops=(), refinements=(), env={})
        return self.map

    # -- statements -----------------------------------------------------
    def _stmt(self, stmt, loops, refinements, env):
        if isinstance(stmt, I.For):
            ctx = LoopCtx(stmt.var.name, int(stmt.extent), stmt.kind)
            inner_env = dict(env)
            inner_env[ctx.name] = Interval(0, max(ctx.extent - 1, 0))
            self._stmt(stmt.body, loops + (ctx,), refinements, inner_env)
            return
        if isinstance(stmt, I.IfThenElse):
            self._expr_reads(stmt.cond, loops, refinements, env)
            bounds = guard_bounds(stmt.cond, env)
            then_ref = refinements + tuple(bounds.items())
            self._stmt(stmt.then_body, loops, then_ref, env)
            if stmt.else_body is not None:
                self._stmt(stmt.else_body, loops, refinements, env)
            return
        if isinstance(stmt, I.Store):
            loc = self._loc(loops, f"store {stmt.buffer.name}")
            fns = tuple(affine_of(simplify(i), env) for i in stmt.indices)
            self.map.accesses.append(Access(
                buffer_name=stmt.buffer.name, shape=tuple(stmt.buffer.shape),
                kind="write", combiner=stmt.combiner,
                indices=tuple(stmt.indices), index_fns=fns, loops=loops,
                refinements=refinements, loc=loc))
            self._expr_reads(stmt.value, loops, refinements, env)
            for idx in stmt.indices:
                self._expr_reads(idx, loops, refinements, env)
            return
        if isinstance(stmt, I.SeqStmt):
            for s in stmt.stmts:
                self._stmt(s, loops, refinements, env)
            return
        if isinstance(stmt, I.Allocate):
            self.map.allocs.append(AllocSite(
                buffer_name=stmt.buffer.name,
                shape=tuple(stmt.buffer.shape), dtype=stmt.buffer.dtype,
                scope=stmt.scope, loc=self._loc(loops, "allocate")))
            self._stmt(stmt.body, loops, refinements, env)
            return
        if isinstance(stmt, I.AttrStmt):
            self._stmt(stmt.body, loops, refinements, env)
            return
        if isinstance(stmt, I.Evaluate):
            self._expr_reads(stmt.expr, loops, refinements, env)
            return
        raise TypeError(f"unknown statement type {type(stmt).__name__}")

    # -- expression reads -----------------------------------------------
    def _expr_reads(self, node, loops, refinements, env):
        if not isinstance(node, E.Expr):
            return
        if isinstance(node, E.TensorElem):
            t = node.tensor
            fns = tuple(affine_of(simplify(i), env) for i in node.indices)
            self.map.accesses.append(Access(
                buffer_name=t.name, shape=tuple(t.shape), kind="read",
                combiner=None, indices=tuple(node.indices), index_fns=fns,
                loops=loops, refinements=refinements,
                loc=self._loc(loops, f"read {t.name}")))
            for i in node.indices:
                self._expr_reads(i, loops, refinements, env)
            return
        if isinstance(node, E.Reduce):
            # The reduction binds its own axes over their exact domains.
            inner_env = dict(env)
            inner_loops = loops
            for ax in node.axes:
                inner_env[ax.name] = Interval(ax.dom[0], ax.dom[1] - 1)
                inner_loops = inner_loops + (
                    LoopCtx(ax.name, ax.extent, "reduce"),)
            self._expr_reads(node.source, inner_loops, refinements, inner_env)
            return
        for c in node.children():
            self._expr_reads(c, loops, refinements, env)

    @staticmethod
    def _loc(loops, leaf: str) -> str:
        segs = [f"{lp.name}[{lp.kind}]" if lp.kind != "serial" else lp.name
                for lp in loops]
        return " > ".join(segs + [leaf]) if segs else leaf


def collect_access_map(stmt: I.Stmt) -> AccessMap:
    """Walk a loop nest once, summarizing every access and allocation."""
    return _Collector().run(stmt)
