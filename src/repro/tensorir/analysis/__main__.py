"""Lint driver: run the dataflow analyses over a suite of kernels.

Usage::

    python -m repro.tensorir.analysis [--suite builtins|bench|all]
                                      [--target cpu|gpu|all]
                                      [--strict] [--verbose] [--json]

``--suite builtins`` compiles every builtin message/edge function from
:mod:`repro.core.builtins` under its :func:`~repro.core.fds.default_fds_for`
schedule; ``--suite bench`` adds the schedule/option variants the benchmark
suite exercises (explicit tiling factors, graph/feature partitioning,
multi-level FDS, tree reduction, hybrid partitioning).  Every compiled
kernel's :class:`~repro.tensorir.analysis.AnalysisReport` is summarized;
``--strict`` exits non-zero if any kernel carries an error-severity
diagnostic (this is the CI ``lint-kernels`` gate).  ``--json`` emits one
machine-readable report object (the same shape as
``python -m repro.runtime.verify --json``) instead of the text listing.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core import fds as fds_mod
from repro.core.compile import (KernelCache, compile_sddmm, compile_spmm,
                                use_kernel_cache)
from repro.graph.sparse import from_edges

from . import AnalysisReport, Severity, analyze_kernel

_N, _M, _F = 32, 96, 16


def _adj(seed: int = 0):
    rng = np.random.default_rng(seed)
    return from_edges(_N, _N, rng.integers(0, _N, _M),
                      rng.integers(0, _N, _M))


def _msg_inputs(name: str):
    """Placeholder arguments for one builtin message-function factory."""
    XV = T.placeholder((_N, _F), name="XV")
    if name == "copy_e":
        return (T.placeholder((_M, _F), name="XE"),)
    if name == "u_mul_e":
        return (XV, T.placeholder((_M,), name="EW"))
    return (XV,)


def _shared_cache_fds(staged):
    """Fig. 7a-style schedule staging ``staged`` through shared memory —
    exercises the footprint estimator's FG003/FG005 path in the lint run."""
    from repro.tensorir.schedule import create_schedule

    def fn(out):
        s = create_schedule(out)
        s[out].bind(out.op.axis[0], "thread.x")
        s.cache_read(staged, "shared", out)
        return s

    return fds_mod.FDS(fn)


def iter_suite(suite: str, targets):
    """Yield ``(label, compile_thunk)`` pairs for the requested suite."""
    adj = _adj()
    for target in targets:
        for name in sorted(dgl_builtins.BUILTIN_MESSAGE_FUNCTIONS):
            factory = dgl_builtins.BUILTIN_MESSAGE_FUNCTIONS[name]
            args = _msg_inputs(name)
            fds = fds_mod.default_fds_for(target, _F, "spmm")
            yield (f"spmm/{name}/{target}",
                   lambda a=args, f=factory, t=target, s=fds:
                   compile_spmm(adj, f(*a), "sum", target=t, fds=s))
        for name in sorted(dgl_builtins.BUILTIN_EDGE_FUNCTIONS):
            factory = dgl_builtins.BUILTIN_EDGE_FUNCTIONS[name]
            XA = T.placeholder((_N, _F), name="XA")
            XB = T.placeholder((_N, _F), name="XB")
            fds = fds_mod.default_fds_for(target, _F, "sddmm")
            yield (f"sddmm/{name}/{target}",
                   lambda f=factory, a=XA, b=XB, t=target, s=fds:
                   compile_sddmm(adj, f(a, b), target=t, fds=s))
        if suite in ("bench", "all"):
            XV = T.placeholder((_N, _F), name="XV")
            msg = dgl_builtins.copy_u_msg(XV)
            variants = {
                "tile8": dict(fds=fds_mod.cpu_tile_fds(8)),
                "multilevel": dict(fds=fds_mod.cpu_multilevel_fds(8, 8)),
                "partitioned": dict(
                    fds=fds_mod.default_fds_for(target, _F, "spmm"),
                    num_graph_partitions=4, num_feature_partitions=2),
            }
            if target == "gpu":
                variants["feature_thread"] = dict(
                    fds=fds_mod.gpu_feature_thread_fds())
                variants["hybrid"] = dict(
                    fds=fds_mod.default_fds_for(target, _F, "spmm"),
                    hybrid_partitioning=True)
                variants["shared_cache"] = dict(fds=_shared_cache_fds(XV))
            for vname, kw in variants.items():
                yield (f"spmm/copy_u+{vname}/{target}",
                       lambda t=target, k=dict(kw):
                       compile_spmm(adj, msg, "sum", target=t, **k))
            if target == "gpu":
                XA = T.placeholder((_N, _F), name="XA")
                XB = T.placeholder((_N, _F), name="XB")
                yield (f"sddmm/u_dot_v+tree_reduce/{target}",
                       lambda t=target:
                       compile_sddmm(adj, dgl_builtins.u_dot_v_edge(XA, XB),
                                     target=t,
                                     fds=fds_mod.gpu_tree_reduce_fds()))


def lint(suite: str, targets, *, strict: bool, verbose: bool,
         as_json: bool = False, out=sys.stdout) -> int:
    """Run the suite; returns the number of kernels with error diagnostics."""
    import json

    failed = 0
    counts = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
    records = []
    with use_kernel_cache(KernelCache()):
        for label, thunk in iter_suite(suite, targets):
            kernel = thunk()
            report: AnalysisReport = analyze_kernel(kernel)
            for d in report.diagnostics:
                counts[d.severity] += 1
            if report.has_errors:
                failed += 1
            if as_json:
                records.append({"kernel": label, **report.as_dict()})
            elif report.has_errors:
                print(f"FAIL {label}", file=out)
                for d in report.sorted():
                    print(f"  {d.render()}", file=out)
            elif verbose:
                n = len(report.diagnostics)
                print(f"ok   {label} ({n} diagnostic{'s' if n != 1 else ''})",
                      file=out)
                for d in report.sorted():
                    print(f"  {d.render()}", file=out)
    if as_json:
        json.dump({"suite": suite, "kernels": records,
                   "errors": counts[Severity.ERROR],
                   "warnings": counts[Severity.WARNING],
                   "notes": counts[Severity.INFO],
                   "failing": failed}, out, indent=2)
        print(file=out)
    else:
        print(f"lint-kernels: {counts[Severity.ERROR]} errors, "
              f"{counts[Severity.WARNING]} warnings, "
              f"{counts[Severity.INFO]} notes; "
              f"{failed} kernel(s) failing"
              f"{' (strict)' if strict else ''}", file=out)
    return failed


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.tensorir.analysis",
        description="Static dataflow lint over FeatGraph kernels.")
    ap.add_argument("--suite", choices=("builtins", "bench", "all"),
                    default="builtins")
    ap.add_argument("--target", choices=("cpu", "gpu", "all"), default="all")
    ap.add_argument("--strict", action="store_true",
                    help="exit non-zero when any error diagnostic is found")
    ap.add_argument("--verbose", "-v", action="store_true",
                    help="also print clean kernels and their notes")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit one machine-readable JSON report")
    ns = ap.parse_args(argv)
    targets = ("cpu", "gpu") if ns.target == "all" else (ns.target,)
    failed = lint(ns.suite, targets, strict=ns.strict, verbose=ns.verbose,
                  as_json=ns.as_json)
    return 1 if (ns.strict and failed) else 0


if __name__ == "__main__":
    sys.exit(main())
