"""Memory-footprint estimation for staging buffers and reduction scratch.

FeatGraph's GPU schedules stage hot operands in shared memory (the paper's
degree-based partitioning exists precisely to make the staged slice fit,
Sec. III-B2) and its CPU schedules stage through cache-resident tiles.
This pass sizes every ``Allocate`` in the lowered nest and compares it to
the simulated hardware budgets from :mod:`repro.hwsim`:

- ``shared``-scope buffers on GPU against
  :meth:`~repro.hwsim.spec.GPUSpec.staging_budget_bytes` (the per-SM /
  per-block shared-memory capacity) -- exceeding it is **FG003** (error):
  the kernel cannot launch on the modeled device.
- ``cache``-scope buffers on CPU against the last-level cache -- exceeding
  it is **FG004** (warning): the kernel still runs, but the staging
  defeats its own purpose and the cost model's locality assumptions.
- everything else gets an **FG005** (info) note recording the estimate,
  including the implicit per-block scratch of ``tree_reduce``-annotated
  loops (one accumulator slot per participating thread).

Estimates are products of declared allocation extents -- which
``validate_ir`` now guarantees to be non-negative and rank-consistent --
times the dtype width, so they are upper bounds of the true working set
(a partitioned schedule touches a slice per step, not the whole buffer).
An upper bound is the right direction for a capacity lint.
"""

from __future__ import annotations

from repro.hwsim.spec import CPUSpec, GPUSpec, TESLA_V100, XEON_8124M

from .accessmap import AccessMap
from .diagnostics import Diagnostic, Severity

__all__ = ["check_footprint", "DTYPE_BYTES", "buffer_bytes"]

DTYPE_BYTES = {
    "float64": 8, "float32": 4, "float16": 2,
    "int64": 8, "int32": 4, "int16": 2, "int8": 1, "bool": 1,
}


def buffer_bytes(shape, dtype: str) -> int:
    n = 1
    for s in shape:
        n *= int(s)
    return n * DTYPE_BYTES.get(dtype, 4)


def _fmt_bytes(n: int) -> str:
    if n >= 1024 * 1024:
        return f"{n / (1024 * 1024):.1f} MiB"
    if n >= 1024:
        return f"{n / 1024:.1f} KiB"
    return f"{n} B"


def check_footprint(amap: AccessMap, target: str | None = None,
                    cpu: CPUSpec = XEON_8124M,
                    gpu: GPUSpec = TESLA_V100):
    """FG003/FG004/FG005 capacity checks.

    Returns ``(diagnostics, footprints)`` where ``footprints`` maps each
    staged buffer name to ``(scope, estimated_bytes)``.
    """
    diags: list[Diagnostic] = []
    footprints: dict[str, tuple[str, int]] = {}

    for alloc in amap.allocs:
        size = buffer_bytes(alloc.shape, alloc.dtype)
        footprints[alloc.buffer_name] = (alloc.scope, size)
        budget = (gpu.staging_budget_bytes(alloc.scope) if target == "gpu"
                  else cpu.staging_budget_bytes(alloc.scope)
                  if target == "cpu" else None)
        if budget is not None and size > budget:
            if target == "gpu" and alloc.scope == "shared":
                diags.append(Diagnostic(
                    rule="FG003", severity=Severity.ERROR, loc=alloc.loc,
                    message=(f"shared-memory staging of {alloc.buffer_name} "
                             f"needs {_fmt_bytes(size)} but {gpu.name} "
                             f"provides {_fmt_bytes(budget)} per block; "
                             f"partition the staged tensor (Sec. III-B2)")))
                continue
            diags.append(Diagnostic(
                rule="FG004", severity=Severity.WARNING, loc=alloc.loc,
                message=(f"{alloc.scope}-scope staging of "
                         f"{alloc.buffer_name} is {_fmt_bytes(size)}, over "
                         f"the {_fmt_bytes(budget)} "
                         f"{'LLC' if target == 'cpu' else 'budget'}; the "
                         f"staged working set will thrash")))
        else:
            diags.append(Diagnostic(
                rule="FG005", severity=Severity.INFO, loc=alloc.loc,
                message=(f"{alloc.scope}-scope staging of "
                         f"{alloc.buffer_name}: {_fmt_bytes(size)} "
                         f"working set")))

    # Cooperative tree reductions hold one accumulator per participating
    # thread in block-shared scratch.
    for scratch_name, (bytes_, loc) in _tree_reduce_scratch(amap).items():
        footprints[scratch_name] = ("shared", bytes_)
        if target == "gpu" and bytes_ > gpu.staging_budget_bytes("shared"):
            diags.append(Diagnostic(
                rule="FG003", severity=Severity.ERROR, loc=loc,
                message=(f"tree-reduction scratch {scratch_name} needs "
                         f"{_fmt_bytes(bytes_)} per block, over the "
                         f"{_fmt_bytes(gpu.staging_budget_bytes('shared'))} "
                         f"shared-memory budget")))
        else:
            diags.append(Diagnostic(
                rule="FG005", severity=Severity.INFO, loc=loc,
                message=(f"tree-reduction scratch {scratch_name}: "
                         f"{_fmt_bytes(bytes_)} per block")))
    return diags, footprints


def _tree_reduce_scratch(amap: AccessMap) -> dict:
    """Implicit per-block scratch of ``tree_reduce[...]`` loops.

    One float32 accumulator slot per participating thread (the extent of
    the annotated loop), keyed so repeated sightings of the same loop var
    across accesses collapse to one entry.
    """
    out: dict[str, tuple[int, str]] = {}
    for acc in amap.accesses:
        for i, loop in enumerate(acc.loops):
            if loop.kind.startswith("tree_reduce["):
                name = f"{loop.name}.tree_reduce"
                if name not in out:
                    path = " > ".join(lp.name for lp in acc.loops[:i + 1])
                    out[name] = (loop.extent * DTYPE_BYTES["float32"], path)
    return out
