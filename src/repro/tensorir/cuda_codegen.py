"""CUDA C source generation.

FeatGraph's real deliverable is generated CUDA/C code; the Python kernels in
:mod:`repro.tensorir.codegen` execute the semantics, and this module emits
the corresponding **CUDA C source text** from the same scheduled IR, so the
generated-kernel story is inspectable end to end:

- axes bound to ``block.*`` / ``thread.*`` become ``blockIdx`` /
  ``threadIdx`` lookups with a grid guard;
- ``tree_reduce`` axes lower to the canonical shared-memory tree reduction
  ([Harris, "Optimizing parallel reduction in CUDA"], the paper's [34]):
  per-thread strided partial sums, then a log-depth ``__syncthreads``
  halving loop;
- everything else becomes plain C loops.

There is no GPU in this environment, so the output is validated
structurally (tests) rather than compiled; the text is also what
``GeneralizedSpMM.cuda_source()`` embeds in the fused-template skeleton.
"""

from __future__ import annotations

from repro.tensorir import expr as E
from repro.tensorir import ir as I
from repro.tensorir.lower import lower
from repro.tensorir.schedule import Schedule

__all__ = ["emit_cuda", "expr_to_c"]

_C_CALLS = {
    "exp": "expf",
    "log": "logf",
    "sqrt": "sqrtf",
    "tanh": "tanhf",
    "abs": "fabsf",
    "pow": "powf",
    "floor": "floorf",
    "ceil": "ceilf",
}

_TAG_TO_CUDA = {
    "block.x": "blockIdx.x",
    "block.y": "blockIdx.y",
    "block.z": "blockIdx.z",
    "thread.x": "threadIdx.x",
    "thread.y": "threadIdx.y",
    "thread.z": "threadIdx.z",
}


def _cname(name: str) -> str:
    return name.replace(".", "_")


def expr_to_c(node: E.Expr) -> str:
    """Render an expression as C source (flat row-major buffer indexing)."""
    if isinstance(node, E.IntImm):
        return str(node.value)
    if isinstance(node, E.FloatImm):
        v = node.value
        if v == float("inf"):
            return "INFINITY"
        if v == float("-inf"):
            return "-INFINITY"
        return f"{v!r}f"
    if isinstance(node, (E.IterVar, E.Var)):
        return _cname(node.name)
    if isinstance(node, E.TensorElem):
        return f"{_cname(node.tensor.name)}[{_flat_index(node.tensor.shape, node.indices)}]"
    if isinstance(node, E.BinOp):
        a, b = expr_to_c(node.a), expr_to_c(node.b)
        if node.op == "max":
            return f"max({a}, {b})"
        if node.op == "min":
            return f"min({a}, {b})"
        if node.op == "//":
            return f"({a} / {b})"
        return f"({a} {node.op} {b})"
    if isinstance(node, E.Call):
        if node.func == "sigmoid":
            return f"(1.0f / (1.0f + expf(-({expr_to_c(node.args[0])}))))"
        args = ", ".join(expr_to_c(a) for a in node.args)
        return f"{_C_CALLS[node.func]}({args})"
    if isinstance(node, E.Select):
        return (f"({expr_to_c(node.cond)} ? {expr_to_c(node.then)} "
                f": {expr_to_c(node.otherwise)})")
    if isinstance(node, E.Cast):
        ctype = "int" if node.dtype.startswith("int") else "float"
        return f"(({ctype}){expr_to_c(node.value)})"
    raise TypeError(f"cannot emit C for {type(node).__name__}")


def _flat_index(shape, indices) -> str:
    """Row-major flattening of a multi-dimensional index."""
    parts = []
    for pos, idx in enumerate(indices):
        stride = 1
        for s in shape[pos + 1:]:
            stride *= s
        term = expr_to_c(idx)
        parts.append(term if stride == 1 else f"({term}) * {stride}")
    return " + ".join(parts) if parts else "0"


class _CudaEmitter:
    def __init__(self):
        self.lines: list[str] = []
        self.indent = 1
        self.shared_decls: list[str] = []
        self.uses_tree_reduce = False

    def emit(self, text: str):
        self.lines.append("  " * self.indent + text)


_COMBINE_C = {
    "sum": "{t} += {v};",
    "prod": "{t} *= {v};",
    "max": "{t} = max({t}, {v});",
    "min": "{t} = min({t}, {v});",
}


def _emit(stmt: I.Stmt, em: _CudaEmitter):
    if isinstance(stmt, I.For):
        name = _cname(stmt.var.name)
        if stmt.kind in _TAG_TO_CUDA:
            em.emit(f"int {name} = {_TAG_TO_CUDA[stmt.kind]};")
            em.emit(f"if ({name} >= {stmt.extent}) return;")
            _emit(stmt.body, em)
            return
        if stmt.kind.startswith("tree_reduce["):
            _emit_tree_reduce(stmt, em)
            return
        pragma = ""
        if stmt.kind == I.For.UNROLL:
            em.emit("#pragma unroll")
        em.emit(f"for (int {name} = 0; {name} < {stmt.extent}; ++{name}) {{")
        em.indent += 1
        _emit(stmt.body, em)
        em.indent -= 1
        em.emit("}")
        return
    if isinstance(stmt, I.Store):
        target = (f"{_cname(stmt.buffer.name)}"
                  f"[{_flat_index(stmt.buffer.shape, stmt.indices)}]")
        value = expr_to_c(stmt.value)
        if stmt.combiner is None:
            em.emit(f"{target} = {value};")
        else:
            em.emit(_COMBINE_C[stmt.combiner].format(t=target, v=value))
        return
    if isinstance(stmt, I.SeqStmt):
        for s in stmt.stmts:
            _emit(s, em)
        return
    if isinstance(stmt, I.IfThenElse):
        em.emit(f"if ({expr_to_c(stmt.cond)}) {{")
        em.indent += 1
        _emit(stmt.then_body, em)
        em.indent -= 1
        if stmt.else_body is not None:
            em.emit("} else {")
            em.indent += 1
            _emit(stmt.else_body, em)
            em.indent -= 1
        em.emit("}")
        return
    if isinstance(stmt, I.Allocate):
        if stmt.scope == "shared":
            size = 1
            for s in stmt.buffer.shape:
                size *= s
            em.shared_decls.append(
                f"__shared__ float {_cname(stmt.buffer.name)}[{size}];")
        _emit(stmt.body, em)
        return
    if isinstance(stmt, I.AttrStmt):
        em.emit(f"// {stmt.key} = {stmt.value}")
        _emit(stmt.body, em)
        return
    if isinstance(stmt, I.Evaluate):
        return
    raise TypeError(f"cannot emit {type(stmt).__name__}")


def _emit_tree_reduce(stmt: I.For, em: _CudaEmitter):
    """Shared-memory tree reduction for a reduce loop bound to threads.

    Emits the canonical pattern: each thread accumulates a strided slice of
    the reduce domain into a register, partials land in shared memory, and a
    log-depth halving loop combines them (paper Fig. 7b / reference [34])."""
    em.uses_tree_reduce = True
    name = _cname(stmt.var.name)
    store = stmt.body
    while not isinstance(store, I.Store):
        # unwrap guards between the reduce loop and the accumulation
        inner = store.children()
        if not inner:
            raise TypeError("tree_reduce body must contain a Store")
        store = inner[0]
    if store.combiner != "sum":
        raise NotImplementedError("tree reduction lowers sum reductions")
    value = expr_to_c(store.value)
    target = (f"{_cname(store.buffer.name)}"
              f"[{_flat_index(store.buffer.shape, store.indices)}]")
    em.emit("// tree reduction across threadIdx.x (Harris [34])")
    em.emit("float _acc = 0.0f;")
    em.emit(f"for (int {name} = threadIdx.x; {name} < {stmt.extent}; "
            f"{name} += blockDim.x) {{")
    em.indent += 1
    em.emit(f"_acc += {value};")
    em.indent -= 1
    em.emit("}")
    em.emit("_reduce_buf[threadIdx.x] = _acc;")
    em.emit("__syncthreads();")
    em.emit("for (int _s = blockDim.x / 2; _s > 0; _s >>= 1) {")
    em.indent += 1
    em.emit("if (threadIdx.x < _s) "
            "_reduce_buf[threadIdx.x] += _reduce_buf[threadIdx.x + _s];")
    em.emit("__syncthreads();")
    em.indent -= 1
    em.emit("}")
    em.emit(f"if (threadIdx.x == 0) {target} = _reduce_buf[0];")


def emit_cuda(schedule: Schedule, args, name: str = "generated_kernel",
              threads_per_block: int = 256) -> str:
    """Lower ``schedule`` and emit a ``__global__`` CUDA kernel source."""
    output = schedule.outputs[0]
    stmt = lower(schedule, output)
    em = _CudaEmitter()
    _emit(stmt, em)
    params = ", ".join(
        [f"float* __restrict__ {_cname(output.name)}"]
        + [("const long* __restrict__ " if a.dtype.startswith("int")
            else "const float* __restrict__ ") + _cname(a.name)
           for a in args])
    header = [f"extern \"C\" __global__ void {name}({params}) {{"]
    if em.uses_tree_reduce:
        header.append(f"  __shared__ float _reduce_buf[{threads_per_block}];")
    header.extend(f"  {d}" for d in em.shared_decls)
    return "\n".join(header + em.lines + ["}"]) + "\n"
