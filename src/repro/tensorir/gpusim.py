"""Functional GPU-launch checking.

The GPU-target kernels produced by :func:`repro.tensorir.build` simulate a
launch by iterating the grid serially.  Real CUDA blocks execute in
arbitrary order, so a kernel is only *correct* if its result is independent
of block scheduling.  :func:`racecheck` verifies that property empirically:
it executes the kernel several times under random block permutations and
reports any output divergence -- the moral equivalent of running
``cuda-memcheck --tool racecheck`` on the generated kernel.

FeatGraph's generated kernels are block-race-free by construction (each
block owns disjoint output rows); this module is the test harness that keeps
that invariant honest as schedules evolve.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.tensorir.codegen import Kernel

__all__ = ["racecheck", "RaceError", "run_with_block_order"]


class RaceError(AssertionError):
    """The kernel's output depends on block execution order."""


def _grid(kernel: Kernel):
    dims = kernel.launch_dims
    grid = [dims.get(t, 1) for t in ("block.x", "block.y", "block.z")]
    block = [dims.get(t, 1) for t in ("thread.x", "thread.y", "thread.z")]
    blocks = list(itertools.product(range(grid[2]), range(grid[1]),
                                    range(grid[0])))
    threads = list(itertools.product(range(block[2]), range(block[1]),
                                     range(block[0])))
    return blocks, threads


def run_with_block_order(kernel: Kernel, arrays, order: np.ndarray,
                         out: np.ndarray | None = None) -> np.ndarray:
    """Execute a GPU kernel with blocks scheduled in the given order."""
    if kernel.target != "gpu":
        raise ValueError("racecheck applies to GPU-target kernels")
    blocks, threads = _grid(kernel)
    if out is None:
        out = np.empty(kernel.output.shape, dtype=kernel.output.dtype)
    for idx in order:
        bz, by, bx = blocks[int(idx)]
        for tz, ty, tx in threads:
            kernel._fn(out, *arrays, _tidx=(bx, by, bz, tx, ty, tz))
    return out


def racecheck(kernel: Kernel, *arrays: np.ndarray, trials: int = 4,
              seed: int = 0, atol: float = 0.0) -> np.ndarray:
    """Run the kernel under random block orders; raise on divergence.

    ``atol=0`` demands bit-identical results (right for kernels whose blocks
    write disjoint locations); a small tolerance admits commutative
    floating-point accumulation differences.  Returns the reference output.
    """
    if trials < 2:
        raise ValueError("racecheck needs at least 2 trials")
    blocks, _ = _grid(kernel)
    n_blocks = len(blocks)
    rng = np.random.default_rng(seed)
    reference = run_with_block_order(kernel, arrays, np.arange(n_blocks))
    for t in range(trials - 1):
        order = rng.permutation(n_blocks)
        got = run_with_block_order(kernel, arrays, order)
        if not np.allclose(got, reference, atol=atol, rtol=0,
                           equal_nan=True):
            diverged = int((~np.isclose(got, reference, atol=atol,
                                        rtol=0)).sum())
            raise RaceError(
                f"kernel output depends on block order: {diverged} element(s)"
                f" diverged under permutation trial {t + 1}")
    return reference
