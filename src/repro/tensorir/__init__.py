"""A miniature tensor compiler, standing in for Apache TVM.

FeatGraph expresses per-vertex/per-edge feature computations (UDFs) in TVM's
tensor-expression language and optimizes them with TVM schedules.  This
package reimplements, from scratch, the subset of TVM that the paper's code
listings exercise:

- :mod:`repro.tensorir.expr` -- the tensor-expression language
  (``placeholder``, ``compute``, ``reduce_axis``, arithmetic, reductions).
- :mod:`repro.tensorir.schedule` -- schedule primitives
  (``split``, ``tile``, ``fuse``, ``reorder``, ``bind``, ``tree_reduce``,
  ``parallel``, ``vectorize``, ``unroll``, ``cache_read``).
- :mod:`repro.tensorir.ir` -- a loop-nest intermediate representation.
- :mod:`repro.tensorir.lower` -- lowering of a scheduled compute to loop IR.
- :mod:`repro.tensorir.codegen` -- generation of executable Python kernels
  from the IR, for a CPU target and a simulated-GPU target.
- :mod:`repro.tensorir.evaluator` -- a vectorized (numpy) interpreter for
  tensor expressions with batched free variables; the differential oracle
  and fallback for the compiled programs.
- :mod:`repro.tensorir.vectorize` -- a batched-UDF compiler that lowers a
  compute body once into a straight-line vectorized numpy program (constant
  folding, CSE, dead-branch pruning, buffer reuse); the execution engine
  used by FeatGraph's sparse templates.
- :mod:`repro.tensorir.runtime` -- a persistent worker pool modeled on TVM's
  customized thread pool, plus runtime execution counters.
- :mod:`repro.tensorir.validate` -- schedule legality checking and
  structural IR validation, run by :func:`lower` before/after lowering.
"""

from repro.tensorir.expr import (
    Expr,
    Var,
    IterVar,
    IntImm,
    FloatImm,
    BinOp,
    Call,
    Select,
    Cast,
    Reduce,
    TensorElem,
    Tensor,
    ComputeOp,
    PlaceholderOp,
    placeholder,
    compute,
    reduce_axis,
    sum as sum_reduce,
    max as max_reduce,
    min as min_reduce,
    prod as prod_reduce,
    exp,
    log,
    sqrt,
    tanh,
    sigmoid,
    relu,
    maximum,
    minimum,
    select,
    const,
)
from repro.tensorir.schedule import Schedule, Stage, create_schedule
from repro.tensorir.evaluator import evaluate, evaluate_batched
from repro.tensorir.lower import lower
from repro.tensorir.codegen import build
from repro.tensorir.runtime import ExecStats, WorkPool, default_pool
from repro.tensorir.vectorize import (
    VectorizeError,
    VectorProgram,
    compile_batched,
    compile_enabled,
)
from repro.tensorir.validate import (
    IRValidationError,
    ScheduleError,
    validate_ir,
    validate_schedule,
)

__all__ = [
    "Expr",
    "Var",
    "IterVar",
    "IntImm",
    "FloatImm",
    "BinOp",
    "Call",
    "Select",
    "Cast",
    "Reduce",
    "TensorElem",
    "Tensor",
    "ComputeOp",
    "PlaceholderOp",
    "placeholder",
    "compute",
    "reduce_axis",
    "sum_reduce",
    "max_reduce",
    "min_reduce",
    "prod_reduce",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "maximum",
    "minimum",
    "select",
    "const",
    "Schedule",
    "Stage",
    "create_schedule",
    "evaluate",
    "evaluate_batched",
    "lower",
    "build",
    "ExecStats",
    "WorkPool",
    "default_pool",
    "VectorizeError",
    "VectorProgram",
    "compile_batched",
    "compile_enabled",
    "ScheduleError",
    "IRValidationError",
    "validate_schedule",
    "validate_ir",
]
