"""Schedule primitives.

A :class:`Schedule` records, per compute op, a loop-transformation recipe in
the style of TVM/Halide: the *what* (the compute definition) stays fixed,
while ``split`` / ``fuse`` / ``reorder`` / ``bind`` / ``tree_reduce`` /
``parallel`` / ``vectorize`` / ``unroll`` reshape the loop nest that computes
it.

FeatGraph's *feature dimension schedule* (FDS) is exactly a schedule built
with these primitives on a UDF's output tensor (paper Figs. 3a, 4a, 8, 9).
The sparse templates introspect the schedule via the ``tiling_of`` /
``binding_of`` / ``tree_reduce_axes`` accessors to pick tiling factors and
GPU parallelization for the feature dimension.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.tensorir.expr import ComputeOp, IterVar, Tensor
from repro.tensorir.validate import ScheduleError

__all__ = ["Schedule", "Stage", "SplitRel", "FuseRel", "create_schedule", "THREAD_TAGS"]

THREAD_TAGS = (
    "block.x",
    "block.y",
    "block.z",
    "thread.x",
    "thread.y",
    "thread.z",
)


class SplitRel:
    """Records ``parent -> (outer, inner)`` with ``parent = outer*factor + inner``."""

    def __init__(self, parent: IterVar, outer: IterVar, inner: IterVar, factor: int):
        self.parent = parent
        self.outer = outer
        self.inner = inner
        self.factor = factor


class FuseRel:
    """Records ``(outer, inner) -> fused`` with
    ``fused = outer*inner_extent + inner``."""

    def __init__(self, outer: IterVar, inner: IterVar, fused: IterVar):
        self.outer = outer
        self.inner = inner
        self.fused = fused


class Stage:
    """The schedule state of one compute op."""

    def __init__(self, tensor: Tensor):
        if not isinstance(tensor.op, ComputeOp):
            raise TypeError(f"{tensor.name} is not a compute tensor")
        self.tensor = tensor
        self.op: ComputeOp = tensor.op
        # Loop order: data-parallel axes first, then reduce axes, as in TVM.
        self.leaf_iter_vars: list[IterVar] = list(self.op.axis) + list(self.op.reduce_axis)
        self.relations: list[SplitRel | FuseRel] = []
        # name -> {"bind": tag, "kind": "parallel"|"vectorize"|"unroll",
        #          "tree_reduce": tag}
        self.iter_attrs: dict[str, dict] = {}
        self.cache_reads: list[tuple[Tensor, str]] = []

    # ------------------------------------------------------------------
    # transformation primitives
    # ------------------------------------------------------------------
    def _replace_leaf(self, axis: IterVar, new: Sequence[IterVar]):
        try:
            pos = self.leaf_iter_vars.index(axis)
        except ValueError:
            raise ValueError(
                f"axis {axis.name} is not a leaf iter var of stage {self.op.name}"
            ) from None
        self.leaf_iter_vars[pos : pos + 1] = list(new)

    def split(self, axis: IterVar, factor: int | None = None, nparts: int | None = None):
        """Split ``axis`` into an (outer, inner) pair.

        Exactly one of ``factor`` (inner extent) or ``nparts`` (outer extent)
        must be given.  Returns ``(outer, inner)``.
        """
        if (factor is None) == (nparts is None):
            raise ScheduleError("give exactly one of factor= or nparts=")
        extent = axis.extent
        if factor is not None:
            factor = int(factor)
            if factor <= 0:
                raise ScheduleError(
                    f"split factor must be positive (got {factor} for axis "
                    f"{axis.name})")
            n_outer = math.ceil(extent / factor)
        else:
            nparts = int(nparts)
            if nparts <= 0:
                raise ScheduleError(
                    f"split nparts must be positive (got {nparts} for axis "
                    f"{axis.name})")
            factor = math.ceil(extent / nparts)
            n_outer = nparts
        outer = IterVar((0, n_outer), name=f"{axis.name}.outer", kind=axis.kind)
        inner = IterVar((0, factor), name=f"{axis.name}.inner", kind=axis.kind)
        self.relations.append(SplitRel(axis, outer, inner, factor))
        self._replace_leaf(axis, (outer, inner))
        return outer, inner

    def fuse(self, outer: IterVar, inner: IterVar) -> IterVar:
        """Fuse two adjacent axes into one."""
        pos_o = self.leaf_iter_vars.index(outer)
        pos_i = self.leaf_iter_vars.index(inner)
        if pos_i != pos_o + 1:
            raise ScheduleError(
                f"fuse requires adjacent axes (outer immediately before "
                f"inner); got {outer.name} at {pos_o}, {inner.name} at {pos_i}")
        fused = IterVar(
            (0, outer.extent * inner.extent),
            name=f"{outer.name}.{inner.name}.fused",
            kind=outer.kind,
        )
        self.relations.append(FuseRel(outer, inner, fused))
        self.leaf_iter_vars[pos_o : pos_i + 1] = [fused]
        return fused

    def reorder(self, *axes: IterVar):
        """Reorder the given leaf axes into the given relative order.

        Reordering a data axis across a ``tree_reduce``-annotated axis is
        rejected: the tree reduction's cooperative-thread structure assumes
        no data axis is nested inside it.
        """
        positions = sorted(self.leaf_iter_vars.index(ax) for ax in axes)
        if len(set(positions)) != len(axes):
            raise ScheduleError("reorder got a repeated axis")
        new_leaves = list(self.leaf_iter_vars)
        for pos, ax in zip(positions, axes):
            new_leaves[pos] = ax
        for tpos, tax in enumerate(new_leaves):
            if "tree_reduce" not in self.iter_attrs.get(tax.name, {}):
                continue
            old_tpos = self.leaf_iter_vars.index(tax)
            for pos, ax in enumerate(new_leaves):
                if ax.kind != IterVar.REDUCE:
                    old_pos = self.leaf_iter_vars.index(ax)
                    if (pos > tpos) != (old_pos > old_tpos):
                        raise ScheduleError(
                            f"cannot reorder data axis {ax.name} across "
                            f"tree-reduced axis {tax.name}")
        self.leaf_iter_vars = new_leaves

    def tile(self, x: IterVar, y: IterVar, x_factor: int, y_factor: int):
        """2-D tiling: split both axes and reorder to (xo, yo, xi, yi)."""
        xo, xi = self.split(x, factor=x_factor)
        yo, yi = self.split(y, factor=y_factor)
        self.reorder(xo, yo, xi, yi)
        return xo, yo, xi, yi

    # ------------------------------------------------------------------
    # annotations
    # ------------------------------------------------------------------
    def _attr(self, axis: IterVar) -> dict:
        if axis not in self.leaf_iter_vars:
            raise ValueError(f"axis {axis.name} is not a leaf iter var")
        return self.iter_attrs.setdefault(axis.name, {})

    def bind(self, axis: IterVar, tag: str):
        """Bind an axis to a GPU thread index (``block.x``, ``thread.x``, ...)."""
        if tag not in THREAD_TAGS:
            raise ScheduleError(
                f"unknown thread tag {tag!r}; expected one of {THREAD_TAGS}")
        if axis.kind == IterVar.REDUCE:
            raise ScheduleError(
                f"reduce axis {axis.name} cannot be bound to {tag!r}; "
                "use tree_reduce for cooperative reductions")
        owner = self.binding_of(tag)
        if owner is not None and owner is not axis:
            raise ScheduleError(
                f"thread tag {tag!r} is already bound to axis {owner.name}")
        self._attr(axis)["bind"] = tag

    def tree_reduce(self, axis: IterVar, tag: str):
        """Parallelize a reduction axis with a tree reduction across the
        threads named by ``tag`` (paper Fig. 4a line 15)."""
        if axis.kind != IterVar.REDUCE:
            raise ScheduleError(
                f"tree_reduce applies to reduce axes only; axis {axis.name} "
                "is a data axis")
        if tag not in THREAD_TAGS:
            raise ScheduleError(f"unknown thread tag {tag!r}")
        self._attr(axis)["tree_reduce"] = tag

    def parallel(self, axis: IterVar):
        """Mark an axis for multi-threaded execution (CPU)."""
        if axis.kind == IterVar.REDUCE:
            raise ScheduleError(
                f"reduce axis {axis.name} cannot be marked parallel; "
                "reductions race across parallel workers")
        self._attr(axis)["kind"] = "parallel"

    def vectorize(self, axis: IterVar):
        """Mark an innermost axis for SIMD execution."""
        self._attr(axis)["kind"] = "vectorize"

    def unroll(self, axis: IterVar):
        """Mark an axis for full unrolling."""
        self._attr(axis)["kind"] = "unroll"

    def cache_read(self, tensor: Tensor, scope: str):
        """Stage reads of ``tensor`` through a faster memory ``scope``
        (``"shared"`` on GPU, ``"cache"`` on CPU)."""
        if scope not in ("shared", "cache", "local"):
            raise ScheduleError(f"unknown memory scope {scope!r}")
        self.cache_reads.append((tensor, scope))

    # ------------------------------------------------------------------
    # introspection (used by FeatGraph's templates and the cost models)
    # ------------------------------------------------------------------
    def root_of(self, axis: IterVar) -> IterVar:
        """Walk split/fuse relations up to the original compute axis."""
        current = axis
        changed = True
        while changed:
            changed = False
            for rel in self.relations:
                if isinstance(rel, SplitRel) and current in (rel.outer, rel.inner):
                    current = rel.parent
                    changed = True
                elif isinstance(rel, FuseRel) and current is rel.fused:
                    current = rel.outer  # arbitrary but deterministic root choice
                    changed = True
        return current

    def tiling_of(self, root_axis: IterVar) -> list[int]:
        """Inner split factors applied (in application order) to a root axis."""
        factors: list[int] = []
        frontier = {root_axis.name}
        for rel in self.relations:
            if isinstance(rel, SplitRel) and rel.parent.name in frontier:
                factors.append(rel.factor)
                frontier.discard(rel.parent.name)
                frontier.add(rel.outer.name)
                frontier.add(rel.inner.name)
        return factors

    def binding_of(self, tag: str) -> IterVar | None:
        """The leaf axis bound to a thread tag, or None."""
        for ax in self.leaf_iter_vars:
            if self.iter_attrs.get(ax.name, {}).get("bind") == tag:
                return ax
        return None

    def tree_reduce_axes(self) -> list[tuple[IterVar, str]]:
        """Reduce axes marked for tree reduction, with their thread tags."""
        out = []
        for ax in self.leaf_iter_vars:
            tag = self.iter_attrs.get(ax.name, {}).get("tree_reduce")
            if tag is not None:
                out.append((ax, tag))
        return out

    def annotation_of(self, axis: IterVar) -> dict:
        return dict(self.iter_attrs.get(axis.name, {}))


class Schedule:
    """A collection of stages, one per compute op reachable from the outputs."""

    def __init__(self, outputs: Sequence[Tensor]):
        self.outputs = list(outputs)
        self.stages: dict[str, Stage] = {}
        for t in self.outputs:
            self._add_stage(t)

    def _add_stage(self, tensor: Tensor):
        if isinstance(tensor.op, ComputeOp) and tensor.name not in self.stages:
            self.stages[tensor.name] = Stage(tensor)
            for inp in tensor.op.input_tensors():
                self._add_stage(inp)

    def __getitem__(self, tensor: Tensor) -> Stage:
        try:
            return self.stages[tensor.name]
        except KeyError:
            raise KeyError(f"no stage for tensor {tensor.name}") from None

    def cache_read(self, tensor: Tensor, scope: str, reader: Tensor) -> None:
        """Route ``reader``'s loads of ``tensor`` through memory ``scope``."""
        self[reader].cache_read(tensor, scope)


def create_schedule(tensor_or_tensors) -> Schedule:
    """Create a default (identity) schedule for one or more output tensors."""
    if isinstance(tensor_or_tensors, Tensor):
        outputs = [tensor_or_tensors]
    else:
        outputs = list(tensor_or_tensors)
    return Schedule(outputs)
