"""Lowering: scheduled compute op -> loop-nest IR.

The lowering pass reconstructs original axis indices from the (split/fused)
leaf loop variables, substitutes them into the compute body, and emits an
init / accumulate / epilogue statement structure for reductions.  Imperfect
splits get bound guards.

Upstream reduce-free compute stages are inlined into the consumer body, which
is the fusion behaviour the paper relies on ("FeatGraph inlines UDFs into the
templates to generate fused kernels").
"""

from __future__ import annotations

from typing import Mapping

from repro.tensorir import expr as E
from repro.tensorir import ir as I
from repro.tensorir.schedule import FuseRel, Schedule, SplitRel, Stage
from repro.tensorir.simplify import simplify
from repro.tensorir.validate import (DEFAULT_FREE_VARS, validate_ir,
                                     validate_schedule)

__all__ = ["lower", "substitute", "inline_computes", "replace_tensor_reads"]


def substitute(node: E.Expr, mapping: Mapping[str, E.Expr]) -> E.Expr:
    """Replace variables (by name) with expressions throughout a tree."""
    if isinstance(node, (E.IterVar, E.Var)):
        return mapping.get(node.name, node)
    if isinstance(node, (E.IntImm, E.FloatImm)):
        return node
    if isinstance(node, E.TensorElem):
        return E.TensorElem(node.tensor, [substitute(i, mapping) for i in node.indices])
    if isinstance(node, E.BinOp):
        return E.BinOp(node.op, substitute(node.a, mapping), substitute(node.b, mapping),
                       dtype=node.dtype)
    if isinstance(node, E.Call):
        return E.Call(node.func, [substitute(a, mapping) for a in node.args], dtype=node.dtype)
    if isinstance(node, E.Select):
        return E.Select(substitute(node.cond, mapping), substitute(node.then, mapping),
                        substitute(node.otherwise, mapping))
    if isinstance(node, E.Cast):
        return E.Cast(substitute(node.value, mapping), node.dtype)
    if isinstance(node, E.Reduce):
        # Reduce axes are bound by the reduction itself; don't substitute them.
        inner = {k: v for k, v in mapping.items() if k not in {a.name for a in node.axes}}
        return E.Reduce(node.combiner, substitute(node.source, inner), node.axes)
    raise TypeError(f"cannot substitute in {type(node).__name__}")


def inline_computes(node: E.Expr) -> E.Expr:
    """Inline reads of reduce-free upstream compute tensors into ``node``."""
    if isinstance(node, E.TensorElem) and isinstance(node.tensor.op, E.ComputeOp):
        op = node.tensor.op
        if op.reduce_axis:
            raise NotImplementedError(
                f"cannot inline compute {op.name!r} with a reduction; "
                "lower it as its own kernel"
            )
        mapping = {ax.name: idx for ax, idx in zip(op.axis, node.indices)}
        return inline_computes(substitute(op.body, mapping))
    if isinstance(node, (E.IterVar, E.Var, E.IntImm, E.FloatImm)):
        return node
    if isinstance(node, E.TensorElem):
        return E.TensorElem(node.tensor, [inline_computes(i) for i in node.indices])
    if isinstance(node, E.BinOp):
        return E.BinOp(node.op, inline_computes(node.a), inline_computes(node.b),
                       dtype=node.dtype)
    if isinstance(node, E.Call):
        return E.Call(node.func, [inline_computes(a) for a in node.args], dtype=node.dtype)
    if isinstance(node, E.Select):
        return E.Select(inline_computes(node.cond), inline_computes(node.then),
                        inline_computes(node.otherwise))
    if isinstance(node, E.Cast):
        return E.Cast(inline_computes(node.value), node.dtype)
    if isinstance(node, E.Reduce):
        return E.Reduce(node.combiner, inline_computes(node.source), node.axes)
    raise TypeError(f"cannot inline in {type(node).__name__}")


def replace_tensor_reads(node: E.Expr, name: str, fn) -> E.Expr:
    """Rewrite every read of placeholder tensor ``name`` via ``fn(indices)``.

    ``fn`` receives the (already recursively rewritten) index expressions of
    one ``TensorElem`` read and returns the replacement expression.  The
    cross-kernel fusion planner uses this to splice an elided producer
    stage's body into its consumers, so the intermediate edge buffer never
    needs to exist.
    """
    if isinstance(node, E.TensorElem):
        idx = [replace_tensor_reads(i, name, fn) for i in node.indices]
        if node.tensor.name == name and isinstance(node.tensor.op, E.PlaceholderOp):
            return fn(idx)
        return E.TensorElem(node.tensor, idx)
    if isinstance(node, (E.IterVar, E.Var, E.IntImm, E.FloatImm)):
        return node
    if isinstance(node, E.BinOp):
        return E.BinOp(node.op, replace_tensor_reads(node.a, name, fn),
                       replace_tensor_reads(node.b, name, fn), dtype=node.dtype)
    if isinstance(node, E.Call):
        return E.Call(node.func,
                      [replace_tensor_reads(a, name, fn) for a in node.args],
                      dtype=node.dtype)
    if isinstance(node, E.Select):
        return E.Select(replace_tensor_reads(node.cond, name, fn),
                        replace_tensor_reads(node.then, name, fn),
                        replace_tensor_reads(node.otherwise, name, fn))
    if isinstance(node, E.Cast):
        return E.Cast(replace_tensor_reads(node.value, name, fn), node.dtype)
    if isinstance(node, E.Reduce):
        return E.Reduce(node.combiner,
                        replace_tensor_reads(node.source, name, fn), node.axes)
    raise TypeError(f"cannot rewrite reads in {type(node).__name__}")


def _find_reduce(node: E.Expr) -> E.Reduce | None:
    """Find the unique Reduce node in an expression (or None)."""
    found: list[E.Reduce] = []

    def walk(e: E.Expr):
        if isinstance(e, E.Reduce):
            found.append(e)
            return  # nested reductions inside a Reduce are not supported
        for c in e.children():
            walk(c)

    walk(node)
    if not found:
        return None
    if len(found) > 1:
        raise NotImplementedError("lowering supports at most one reduction per compute")
    return found[0]


def _index_map(stage: Stage) -> tuple[dict[str, E.Expr], list[E.Expr]]:
    """Express each root axis in terms of leaf loop vars.

    Returns ``(mapping, guards)`` where guards are bound-check predicates for
    imperfect splits.
    """
    values: dict[str, E.Expr] = {ax.name: ax for ax in stage.leaf_iter_vars}
    guards: list[E.Expr] = []
    for rel in reversed(stage.relations):
        if isinstance(rel, SplitRel):
            outer = values[rel.outer.name]
            inner = values[rel.inner.name]
            parent_val = outer * rel.factor + inner
            values[rel.parent.name] = parent_val
            if rel.outer.extent * rel.factor > rel.parent.extent:
                guards.append(parent_val < E.const(rel.parent.extent))
            values.pop(rel.outer.name, None)
            values.pop(rel.inner.name, None)
        elif isinstance(rel, FuseRel):
            fused = values[rel.fused.name]
            values[rel.outer.name] = fused // rel.inner.extent
            values[rel.inner.name] = fused % rel.inner.extent
            values.pop(rel.fused.name, None)
    return values, guards


def _guard_vars(expr: E.Expr) -> set[str]:
    """Names of iteration variables mentioned by a guard predicate."""
    names: set[str] = set()

    def walk(e: E.Expr):
        if isinstance(e, (E.IterVar, E.Var)):
            names.add(e.name)
        for c in e.children():
            walk(c)

    walk(expr)
    return names


def _wrap_loops(body: I.Stmt, leaves, stage: Stage, skip=frozenset()) -> I.Stmt:
    """Wrap ``body`` in the stage's loop nest (innermost last in ``leaves``)."""
    stmt = body
    for ax in reversed(list(leaves)):
        if ax.name in skip:
            continue
        attrs = stage.iter_attrs.get(ax.name, {})
        kind = I.For.SERIAL
        if "bind" in attrs:
            kind = attrs["bind"]
        elif "tree_reduce" in attrs:
            kind = f"tree_reduce[{attrs['tree_reduce']}]"
        elif attrs.get("kind") == "parallel":
            kind = I.For.PARALLEL
        elif attrs.get("kind") == "vectorize":
            kind = I.For.VECTORIZE
        elif attrs.get("kind") == "unroll":
            kind = I.For.UNROLL
        stmt = I.For(ax, ax.extent, stmt, kind=kind)
    return stmt


def _guarded(body: I.Stmt, guards) -> I.Stmt:
    for g in reversed(guards):
        body = I.IfThenElse(g, body)
    return body


def lower(schedule: Schedule, output: E.Tensor | None = None, *,
          validate: bool = True) -> I.Stmt:
    """Lower the schedule of (one of) its output tensors to loop IR.

    With ``validate=True`` (the default) the stage's schedule is legality-
    checked before lowering and the produced loop nest is structurally
    validated afterwards, so illegal programs raise :class:`ScheduleError` /
    :class:`IRValidationError` here instead of failing deep inside codegen.
    """
    if output is None:
        if len(schedule.outputs) != 1:
            raise ValueError("schedule has multiple outputs; pass output= explicitly")
        output = schedule.outputs[0]
    stage = schedule[output]
    if validate:
        validate_schedule(stage)
    op = stage.op
    out_buf = I.BufferRef(output.name, op.shape, output.dtype)

    body_expr = inline_computes(op.body)
    index_values, guards = _index_map(stage)
    index_values = {k: simplify(v) for k, v in index_values.items()}
    guards = [simplify(g) for g in guards]
    out_indices = [index_values[ax.name] for ax in op.axis]

    red = _find_reduce(body_expr)
    leaves = stage.leaf_iter_vars

    # The compute's own free variables (the template trace vars plus any
    # user parameters) are legal references in the lowered nest.
    free_names = DEFAULT_FREE_VARS | {v.name for v in op.free_vars()}

    if red is None:
        value = simplify(substitute(body_expr, index_values))
        store = I.Store(out_buf, value, out_indices)
        stmt = _wrap_loops(_guarded(store, guards), leaves, stage)
        stmt = _attach_cache_reads(stmt, stage)
        if validate:
            validate_ir(stmt, free_vars=free_names)
        return stmt

    # Reduction: init nest over data leaves, accumulate nest over all leaves,
    # optional epilogue if the Reduce is wrapped in element-wise work.
    data_leaves = [ax for ax in leaves if ax.kind == E.IterVar.DATA]
    data_names = {ax.name for ax in data_leaves}
    init = I.Store(out_buf, E.const(red.identity, output.dtype), out_indices)
    # The init/epilogue nests only define the data leaf vars, so only guards
    # whose variables are all data leaves apply there.
    init_guards = [g for g in guards if _guard_vars(g) <= data_names]
    init_nest = _wrap_loops(_guarded(init, init_guards), data_leaves, stage)

    source = simplify(substitute(red.source, index_values))
    acc = I.Store(out_buf, source, out_indices, combiner=red.combiner)
    acc_nest = _wrap_loops(_guarded(acc, guards), leaves, stage)

    stmts = [init_nest, acc_nest]
    if body_expr is not red:
        # e.g. relu(sum(...)): apply the wrapper reading back the accumulator.
        acc_read = E.TensorElem(output, out_indices)
        epilogue_expr = _replace_reduce(substitute_keep_reduce(body_expr, index_values), acc_read)
        epilogue = I.Store(out_buf, epilogue_expr, out_indices)
        stmts.append(_wrap_loops(_guarded(epilogue, init_guards), data_leaves, stage))
    stmt = I.SeqStmt(stmts)
    stmt = _attach_cache_reads(stmt, stage)
    if validate:
        validate_ir(stmt, free_vars=free_names)
    return stmt


def substitute_keep_reduce(node: E.Expr, mapping: Mapping[str, E.Expr]) -> E.Expr:
    """Like :func:`substitute` but leaves Reduce nodes as opaque markers."""
    if isinstance(node, E.Reduce):
        return node
    if isinstance(node, (E.IterVar, E.Var)):
        return mapping.get(node.name, node)
    if isinstance(node, (E.IntImm, E.FloatImm)):
        return node
    if isinstance(node, E.TensorElem):
        return E.TensorElem(node.tensor, [substitute_keep_reduce(i, mapping) for i in node.indices])
    if isinstance(node, E.BinOp):
        return E.BinOp(node.op, substitute_keep_reduce(node.a, mapping),
                       substitute_keep_reduce(node.b, mapping), dtype=node.dtype)
    if isinstance(node, E.Call):
        return E.Call(node.func, [substitute_keep_reduce(a, mapping) for a in node.args],
                      dtype=node.dtype)
    if isinstance(node, E.Select):
        return E.Select(substitute_keep_reduce(node.cond, mapping),
                        substitute_keep_reduce(node.then, mapping),
                        substitute_keep_reduce(node.otherwise, mapping))
    if isinstance(node, E.Cast):
        return E.Cast(substitute_keep_reduce(node.value, mapping), node.dtype)
    raise TypeError(f"cannot substitute in {type(node).__name__}")


def _replace_reduce(node: E.Expr, replacement: E.Expr) -> E.Expr:
    """Swap the (unique) Reduce node for ``replacement``."""
    if isinstance(node, E.Reduce):
        return replacement
    if isinstance(node, (E.IterVar, E.Var, E.IntImm, E.FloatImm)):
        return node
    if isinstance(node, E.TensorElem):
        return E.TensorElem(node.tensor, [_replace_reduce(i, replacement) for i in node.indices])
    if isinstance(node, E.BinOp):
        return E.BinOp(node.op, _replace_reduce(node.a, replacement),
                       _replace_reduce(node.b, replacement), dtype=node.dtype)
    if isinstance(node, E.Call):
        return E.Call(node.func, [_replace_reduce(a, replacement) for a in node.args],
                      dtype=node.dtype)
    if isinstance(node, E.Select):
        return E.Select(_replace_reduce(node.cond, replacement),
                        _replace_reduce(node.then, replacement),
                        _replace_reduce(node.otherwise, replacement))
    if isinstance(node, E.Cast):
        return E.Cast(_replace_reduce(node.value, replacement), node.dtype)
    raise TypeError(f"cannot replace in {type(node).__name__}")


def _attach_cache_reads(stmt: I.Stmt, stage: Stage) -> I.Stmt:
    """Wrap the nest with Allocate markers for scheduled cache_read scopes."""
    for tensor, scope in reversed(stage.cache_reads):
        buf = I.BufferRef(f"{tensor.name}.{scope}", tensor.shape, tensor.dtype)
        stmt = I.Allocate(buf, scope, stmt)
    return stmt
