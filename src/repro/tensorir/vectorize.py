"""Batched-UDF compilation to straight-line vectorized numpy programs.

:func:`evaluate_batched` tree-walks the UDF expression per edge chunk:
every chunk pays Python dispatch per AST node, rebuilds the same broadcast
reshapes, and materializes a temporary per subexpression.  This module
closes that gap (the paper's "fused by a tensor compiler" claim, Sec. III):
:func:`compile_batched` lowers a :class:`~repro.tensorir.expr.ComputeOp`
body *once* into a :class:`VectorProgram` -- generated Python source whose
body is a straight line of numpy calls -- which per-chunk execution then
replays with no compilation work and no allocation beyond the live set.

Optimizations applied while lowering:

- **constant folding** -- subtrees with all-constant operands execute at
  compile time with the exact numpy ops and dtypes the interpreter would
  have used, so folded results are bit-identical;
- **common-subexpression elimination** -- structurally identical subtrees
  compute once (edge-softmax's repeated ``exp(ES[eid,i] - MAXV[dst,i])`` is
  the motivating case);
- **dead-branch pruning** -- a ``Select`` with a constant condition emits
  only the taken branch (when both branches agree on dtype, so the pruned
  program matches ``np.where``'s type promotion);
- **vectorized reductions** -- a reduction over a small compile-time
  domain becomes an extra array dimension collapsed by one
  ``ufunc.reduce(..., keepdims=True)`` call (dot-product attention's
  feature reduction is the motivating case) instead of a Python loop;
- **loop-invariant code motion** -- instructions inside a (fallback)
  reduction loop that do not depend on the loop variable are hoisted out;
- **in-place buffer reuse** -- an elementwise op whose operand buffer dies
  at that instruction writes its result with ``out=`` into the dead buffer,
  and reduction accumulators combine in place;
- **flat gathers** -- tensor reads indexed by batch variables and output
  axes lower to a single row-gather-plus-slice (``XV[src, lo:hi]``) instead
  of pointwise broadcast fancy-indexing, which is both faster and moves
  fewer index bytes.

The generated program mirrors :func:`evaluate_batched` -- same numpy
ufuncs, same dtype promotion -- so the interpreter doubles as the
differential-testing oracle.  Elementwise programs and ``max``/``min``
reductions are bit-identical; vectorized ``sum``/``prod`` reductions use
numpy's pairwise combine order instead of the interpreter's sequential
one, so they agree to float rounding (well inside the suite's 1e-5
tolerance).  Expressions the compiler cannot handle raise
:class:`VectorizeError`; callers fall back to the interpreter.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.tensorir import expr as E

__all__ = [
    "VectorizeError",
    "ProgramStats",
    "VectorProgram",
    "compile_batched",
    "compile_enabled",
]


def compile_enabled() -> bool:
    """Whether templates should execute through compiled programs.

    Controlled by the ``FEATGRAPH_UDF_COMPILE`` environment variable
    (default on; set to ``0``/``false``/``off`` to force the tree-walk
    interpreter everywhere, e.g. when bisecting a numerical difference).
    """
    return os.environ.get("FEATGRAPH_UDF_COMPILE", "1").lower() not in (
        "0", "false", "off")

#: mask marker for the batch dimension (output axes are marked 0..n-1)
_BATCH = -1

_NP_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "int32": np.int32,
    "int64": np.int64,
    "bool": np.bool_,
}

#: BinOp -> ufunc expression (matches the interpreter's operators exactly)
_BIN_UFUNC = {
    "+": "np.add",
    "-": "np.subtract",
    "*": "np.multiply",
    "/": "np.true_divide",
    "//": "np.floor_divide",
    "%": "np.mod",
    "max": "np.maximum",
    "min": "np.minimum",
    "<": "np.less",
    "<=": "np.less_equal",
    ">": "np.greater",
    ">=": "np.greater_equal",
    "==": "np.equal",
    "!=": "np.not_equal",
}

#: unary Call intrinsics -> ufunc (the interpreter's _UNARY_FUNCS)
_CALL_UFUNC = {
    "exp": "np.exp",
    "log": "np.log",
    "sqrt": "np.sqrt",
    "tanh": "np.tanh",
    "abs": "np.abs",
    "floor": "np.floor",
    "ceil": "np.ceil",
}

_COMBINE_UFUNC = {
    "sum": "np.add",
    "prod": "np.multiply",
    "max": "np.maximum",
    "min": "np.minimum",
}

#: cap on compile-time iterations when folding an all-constant reduction
_FOLD_TRIP_LIMIT = 4096

#: largest reduction domain lowered to a vectorized ``ufunc.reduce``
#: (bigger domains fall back to a Python loop over pre-gathered rows)
_VEC_TRIP_LIMIT = 4096

#: cap on the product of all vectorized reduce extents in one program,
#: bounding the rank-extended intermediate arrays
_VEC_TOTAL_LIMIT = 1 << 16

#: a vectorized reduce materializes its source at (out-axes x trip); when
#: that intermediate exceeds the largest batch-gathered operand by more
#: than this factor (e.g. a dense (d1, d2) weight broadcast against a
#: (batch, d1) gather), the loop form's (batch, out-axes) accumulator moves
#: far less memory per item and wins despite the Python trip overhead
_VEC_EXPANSION_LIMIT = 4


class VectorizeError(Exception):
    """The expression cannot be compiled; use the interpreter instead."""


@dataclass
class ProgramStats:
    """Counters describing one compiled program (how much the optimizer
    did, and what the per-chunk data movement looks like)."""

    ast_nodes: int = 0          #: expression nodes visited
    instructions: int = 0       #: numpy statements in the emitted body
    cse_hits: int = 0           #: subtrees served from the CSE memo
    constants_folded: int = 0   #: ops executed at compile time
    branches_pruned: int = 0    #: Select branches dropped (const cond)
    hoisted: int = 0            #: instructions moved out of reduce loops
    inplace_ops: int = 0        #: ops writing ``out=`` into a dead buffer
    gathers: int = 0            #: tensor reads emitted
    fast_gathers: int = 0       #: of those, flat row-gather specializations
    hoisted_gathers: int = 0    #: reduce-indexed reads pre-gathered as rows
    loops: int = 0              #: Python reduction loops emitted
    vector_reduces: int = 0     #: reductions lowered to one ufunc.reduce
    #: (itemsize, reads_batch, axes, trip, tensor) per gather, for bytes
    #: accounting; ``tensor`` lets the fused executor exclude chain buffers
    loads: list = field(default_factory=list)
    #: upper bound on bytes gathered per batch element (chunk sizing)
    workset_bytes_per_item: int = 0


# ----------------------------------------------------------------------
# compile-time values and instructions
# ----------------------------------------------------------------------

_MISSING = object()


class _Value:
    """A register (or constant) produced while lowering.

    ``mask`` is the set of dimensions the value spans (``_BATCH`` and/or
    output-axis positions); together with the full-rank shaping convention
    it determines the runtime shape exactly.  ``block`` is where the
    defining instruction lives -- buffer reuse never crosses blocks.
    """

    __slots__ = ("name", "np_dtype", "mask", "block", "const", "writable")

    def __init__(self, name, np_dtype, mask, block, const=_MISSING,
                 writable=True):
        self.name = name
        self.np_dtype = np.dtype(np_dtype) if np_dtype is not None else None
        self.mask = frozenset(mask)
        self.block = block
        self.const = const
        self.writable = writable

    @property
    def is_const(self):
        return self.const is not _MISSING


class _Block:
    __slots__ = ("depth", "items", "trip")

    def __init__(self, depth, trip):
        self.depth = depth
        self.items = []
        self.trip = trip


class _Raw:
    __slots__ = ("text",)

    def __init__(self, text):
        self.text = text


class _Instr:
    """``dest = fn(args...)`` (ufunc; eligible for out=) or
    ``dest = <template>`` (gather / where / astype; never in-place)."""

    __slots__ = ("dest", "fn", "tokens", "operands", "inplace_ok",
                 "template", "pos")

    def __init__(self, dest, fn, tokens, operands, inplace_ok,
                 template=None):
        self.dest = dest
        self.fn = fn
        self.tokens = tokens
        self.operands = operands
        self.inplace_ok = inplace_ok
        self.template = template
        self.pos = -1


class _Init:
    __slots__ = ("acc",)

    def __init__(self, acc):
        self.acc = acc


class _Loop:
    __slots__ = ("var", "lo", "hi", "body")

    def __init__(self, var, lo, hi, body):
        self.var = var
        self.lo = lo
        self.hi = hi
        self.body = body


class _Combine:
    """The reduction-combine statement at the innermost loop level.

    ``init`` selects the first-iteration form: ``"alias"`` binds the
    accumulator to the body value's buffer (safe only when that buffer is
    fresh each iteration), ``"copy"`` copies a loop-invariant array, and
    ``"plain"`` is for scalars.  ``use_out`` combines in place.
    """

    __slots__ = ("acc", "val", "tok", "fn", "init", "use_out", "pos")

    def __init__(self, acc, val, tok, fn, init, use_out):
        self.acc = acc
        self.val = val
        self.tok = tok
        self.fn = fn
        self.init = init
        self.use_out = use_out
        self.pos = -1


def _literal(v):
    """An eval-able source token for a folded constant."""
    if isinstance(v, (bool, int, float)):
        return repr(v)
    return repr(v)  # numpy scalars repr as "np.float32(1.5)" etc.


# ----------------------------------------------------------------------
# the compiler
# ----------------------------------------------------------------------


class _Compiler:
    def __init__(self, op: E.ComputeOp):
        self.op = op
        self.n = len(op.axis)
        self.axis_pos = {ax.name: j for j, ax in enumerate(op.axis)}
        self.stats = ProgramStats()
        self.root = _Block(0, 1)
        self.stack = [self.root]
        self._memo: dict = {}
        self._block_keys: dict[int, list] = {id(self.root): []}
        self._keys: dict[int, object] = {}
        self._keepalive: list = []
        self._dtype_memo: dict[int, np.dtype] = {}
        self._reg = 0
        self._acc = 0
        self._loopvar = 0
        self.tensors: dict[str, str] = {}     # tensor name -> local alias
        self.tensor_shapes: dict[str, tuple] = {}
        self.batch_vals: dict[str, _Value] = {}
        self.grids: dict[int, _Value] = {}
        self._active_loops: dict[str, _Value] = {}
        self._loop_doms: dict[str, tuple[int, int]] = {}
        self._pre_memo: dict = {}
        self.red_pos: dict[int, int] = {}   # id(IterVar) -> mask position
        self.red_extents: list[int] = []
        self._rgrids: dict[int, tuple[int, int, int]] = {}
        self._assign_reduce_positions(op.body)
        self.n_red = len(self.red_extents)

    def _assign_reduce_positions(self, body) -> None:
        """Prescan: small reduction domains become extra (vectorized)
        array dimensions instead of Python loops.  An axis qualifies only
        if every reduce using it fits the trip limit and the program-wide
        product of vectorized extents stays bounded."""
        reduces: list[E.Reduce] = []
        blacklist: set[int] = set()
        stack = [body]
        while stack:
            node = stack.pop()
            if isinstance(node, E.Reduce):
                reduces.append(node)
                total = 1
                for ax in node.axes:
                    total *= ax.extent
                if not 0 < total <= _VEC_TRIP_LIMIT or \
                        self._expansion_too_large(node, total):
                    blacklist.update(id(ax) for ax in node.axes)
                stack.append(node.source)
            elif isinstance(node, E.BinOp):
                stack.extend((node.a, node.b))
            elif isinstance(node, E.Call):
                stack.extend(node.args)
            elif isinstance(node, E.Select):
                stack.extend((node.cond, node.then, node.otherwise))
            elif isinstance(node, E.Cast):
                stack.append(node.value)
            elif isinstance(node, E.TensorElem):
                stack.extend(node.indices)
        product = 1
        for red in reduces:
            for ax in red.axes:
                if id(ax) in blacklist or id(ax) in self.red_pos:
                    continue
                if product * ax.extent > _VEC_TOTAL_LIMIT:
                    continue
                product *= ax.extent
                self.red_pos[id(ax)] = (len(self.op.axis)
                                        + len(self.red_extents))
                self.red_extents.append(ax.extent)
                self._keepalive.append(ax)

    def _expansion_too_large(self, red: "E.Reduce", trip: int) -> bool:
        """Would vectorizing ``red`` blow up memory traffic?  Compares the
        rank-extended intermediate (all output axes its source references,
        times the reduction trip) against the largest batch-gathered
        operand.  Sources with no batched operand (constant subtrees) are
        never rejected: they fold or broadcast for free."""
        red_ids = {id(ax) for ax in red.axes}
        out_axes: dict[int, int] = {}
        largest_batched = 0
        stack = [red.source]
        while stack:
            node = stack.pop()
            if isinstance(node, E.TensorElem):
                elems, batched = 1, False
                ix_stack = list(node.indices)
                while ix_stack:
                    ix = ix_stack.pop()
                    if isinstance(ix, E.Var):
                        batched = True
                    elif isinstance(ix, E.IterVar):
                        if ix.name in self.axis_pos:
                            out_axes[id(ix)] = ix.extent
                            elems *= ix.extent
                        elif id(ix) in red_ids:
                            elems *= ix.extent
                    elif isinstance(ix, E.BinOp):
                        ix_stack.extend((ix.a, ix.b))
                    elif isinstance(ix, E.Cast):
                        ix_stack.append(ix.value)
                if batched:
                    largest_batched = max(largest_batched, elems)
            elif isinstance(node, E.BinOp):
                stack.extend((node.a, node.b))
            elif isinstance(node, E.Call):
                stack.extend(node.args)
            elif isinstance(node, E.Select):
                stack.extend((node.cond, node.then, node.otherwise))
            elif isinstance(node, E.Cast):
                stack.append(node.value)
            elif isinstance(node, E.Reduce):
                stack.append(node.source)
        if largest_batched == 0:
            return False
        intermediate = trip
        for extent in out_axes.values():
            intermediate *= extent
        return intermediate > _VEC_EXPANSION_LIMIT * largest_batched

    # -- naming --------------------------------------------------------
    def _new_reg(self):
        self._reg += 1
        return f"t{self._reg}"

    def _tok(self, v: _Value):
        return _literal(v.const) if v.is_const else v.name

    def _const(self, value):
        return _Value(None, np.asarray(value).dtype, (), self.root,
                      const=value, writable=False)

    # -- CSE memo ------------------------------------------------------
    def _key(self, node):
        k = self._keys.get(id(node))
        if k is not None:
            return k
        if isinstance(node, E.IntImm):
            k = ("i", node.value)
        elif isinstance(node, E.FloatImm):
            k = ("f", repr(node.value), node.dtype)
        elif isinstance(node, E.IterVar):
            k = ("iv", node.name)
        elif isinstance(node, E.Var):
            k = ("v", node.name)
        elif isinstance(node, E.TensorElem):
            k = ("elem", node.tensor.name,
                 tuple(self._key(i) for i in node.indices))
        elif isinstance(node, E.BinOp):
            k = ("bin", node.op, self._key(node.a), self._key(node.b))
        elif isinstance(node, E.Call):
            k = ("call", node.func, tuple(self._key(a) for a in node.args))
        elif isinstance(node, E.Select):
            k = ("sel", self._key(node.cond), self._key(node.then),
                 self._key(node.otherwise))
        elif isinstance(node, E.Cast):
            k = ("cast", node.dtype, self._key(node.value))
        elif isinstance(node, E.Reduce):
            k = ("red", node.combiner,
                 tuple((ax.name, ax.dom) for ax in node.axes),
                 self._key(node.source))
        else:
            raise VectorizeError(
                f"cannot vectorize node of type {type(node).__name__}")
        self._keys[id(node)] = k
        self._keepalive.append(node)
        return k

    def _remember(self, key, value: _Value):
        self._memo[key] = value
        self._block_keys[id(value.block)].append(key)

    # -- block stack ---------------------------------------------------
    def _push_block(self, trip):
        blk = _Block(len(self.stack), trip)
        self.stack.append(blk)
        self._block_keys[id(blk)] = []
        return blk

    def _pop_block(self):
        blk = self.stack.pop()
        for key in self._block_keys.pop(id(blk)):
            self._memo.pop(key, None)
        return blk

    def _target_block(self, operands):
        blk = self.root
        for v in operands:
            if isinstance(v, _Value) and v.block.depth > blk.depth:
                blk = v.block
        return blk

    # -- dtype inference (sampling real numpy ops) ---------------------
    def _sample(self, v: _Value):
        if v.is_const:
            return v.const
        return np.ones((), dtype=v.np_dtype)[()]

    def _infer_dtype(self, node) -> np.dtype:
        """Result dtype of ``node`` without emitting code: run the same
        numpy ops the interpreter would, on unit samples."""
        memo = self._dtype_memo
        d = memo.get(id(node))
        if d is not None:
            return d
        if isinstance(node, E.IntImm):
            d = np.dtype(np.int64)
        elif isinstance(node, E.FloatImm):
            d = np.dtype(np.float32 if node.dtype == "float32"
                         else np.float64)
        elif isinstance(node, (E.IterVar, E.Var)):
            d = np.dtype(np.int64)
        elif isinstance(node, E.TensorElem):
            d = np.dtype(_np_dtype(node.tensor.dtype))
        elif isinstance(node, E.Cast):
            d = np.dtype(_np_dtype(node.dtype))
        elif isinstance(node, E.Reduce):
            if any(ax.extent == 0 for ax in node.axes):
                d = np.dtype(np.float32)
            else:
                d = self._infer_dtype(node.source)
        else:
            with np.errstate(all="ignore"):
                if isinstance(node, E.BinOp):
                    fn = _bin_fn(node.op)
                    r = fn(_unit(self._infer_dtype(node.a)),
                           _unit(self._infer_dtype(node.b)))
                elif isinstance(node, E.Call):
                    args = [_unit(self._infer_dtype(a)) for a in node.args]
                    r = _call_sample(node.func, args)
                elif isinstance(node, E.Select):
                    r = np.where(_unit(self._infer_dtype(node.cond)),
                                 _unit(self._infer_dtype(node.then)),
                                 _unit(self._infer_dtype(node.otherwise)))
                else:
                    raise VectorizeError(
                        f"cannot vectorize node of type "
                        f"{type(node).__name__}")
            d = np.asarray(r).dtype
        memo[id(node)] = d
        self._keepalive.append(node)
        return d

    # -- emission helpers ----------------------------------------------
    def _emit_ufunc(self, fn_tok, sample_fn, operands) -> _Value:
        """Emit ``dest = fn(ops...)``, folding if every operand is const."""
        if all(v.is_const for v in operands):
            with np.errstate(all="ignore"):
                result = sample_fn(*[v.const for v in operands])
            self.stats.constants_folded += 1
            return self._const(result)
        with np.errstate(all="ignore"):
            r = sample_fn(*[self._sample(v) for v in operands])
        dtype = np.asarray(r).dtype
        mask = frozenset().union(*[v.mask for v in operands])
        block = self._target_block(operands)
        dest = _Value(self._new_reg(), dtype, mask, block)
        instr = _Instr(dest, fn_tok, [self._tok(v) for v in operands],
                       [v for v in operands if not v.is_const],
                       inplace_ok=True)
        self._place(instr, block)
        return dest

    def _emit_expr(self, template, dtype, mask, operands,
                   block=None) -> _Value:
        """Emit ``dest = <template>`` (gather/where/astype; no out=)."""
        if block is None:
            block = self._target_block(operands)
        dest = _Value(self._new_reg(), dtype, mask, block)
        instr = _Instr(dest, None, [], [v for v in operands
                                        if isinstance(v, _Value)
                                        and not v.is_const],
                       inplace_ok=False, template=template)
        self._place(instr, block)
        return dest

    def _place(self, instr, block):
        if block is not self.stack[-1]:
            self.stats.hoisted += 1
        block.items.append(instr)
        self.stats.instructions += 1

    # -- node visitors -------------------------------------------------
    def compile(self, node) -> _Value:
        self.stats.ast_nodes += 1
        key = self._key(node)
        hit = self._memo.get(key)
        if hit is not None:
            if not isinstance(node, (E.IntImm, E.FloatImm, E.Var,
                                     E.IterVar)):
                self.stats.cse_hits += 1
            return hit
        val = self._compile_new(node)
        self._remember(key, val)
        return val

    def _compile_new(self, node) -> _Value:
        if isinstance(node, E.IntImm):
            # the interpreter maps every IntImm to np.int64
            return self._const(np.int64(node.value))
        if isinstance(node, E.FloatImm):
            ty = np.float32 if node.dtype == "float32" else np.float64
            return self._const(ty(node.value))
        if isinstance(node, E.IterVar):
            return self._itervar(node)
        if isinstance(node, E.Var):
            return self._batch_var(node)
        if isinstance(node, E.TensorElem):
            return self._gather(node)
        if isinstance(node, E.BinOp):
            a, b = self.compile(node.a), self.compile(node.b)
            return self._emit_ufunc(_BIN_UFUNC[node.op], _bin_fn(node.op),
                                    [a, b])
        if isinstance(node, E.Call):
            return self._call(node)
        if isinstance(node, E.Select):
            return self._select(node)
        if isinstance(node, E.Cast):
            return self._cast(node)
        if isinstance(node, E.Reduce):
            return self._reduce(node)
        raise VectorizeError(
            f"cannot vectorize node of type {type(node).__name__}")

    def _itervar(self, node: E.IterVar) -> _Value:
        if node.name in self._active_loops:
            return self._active_loops[node.name]
        j = self.axis_pos.get(node.name)
        if j is None or node.kind != E.IterVar.DATA:
            raise VectorizeError(
                f"iteration variable {node.name!r} is not an output axis "
                "of this compute op")
        grid = self.grids.get(j)
        if grid is None:
            grid = _Value(f"_g{j}", np.int64, (j,), self.root,
                          writable=False)
            self.grids[j] = grid
        return grid

    def _batch_var(self, node: E.Var) -> _Value:
        v = self.batch_vals.get(node.name)
        if v is None:
            if not node.name.isidentifier():
                raise VectorizeError(
                    f"free variable {node.name!r} is not an identifier")
            v = _Value(f"_b_{node.name}", np.int64, (_BATCH,), self.root,
                       writable=False)
            self.batch_vals[node.name] = v
        return v

    def _call(self, node: E.Call) -> _Value:
        args = [self.compile(a) for a in node.args]
        if node.func == "sigmoid":
            # exactly the interpreter's decomposition:
            #   1.0 / (1.0 + np.exp(-x))      (python-float literals)
            neg = self._emit_ufunc("np.negative", np.negative, [args[0]])
            ex = self._emit_ufunc("np.exp", np.exp, [neg])
            one = self._const(1.0)
            add = self._emit_ufunc("np.add", np.add, [one, ex])
            return self._emit_ufunc("np.true_divide", np.true_divide,
                                    [one, add])
        if node.func == "pow":
            return self._emit_ufunc("np.power", np.power, args)
        fn_tok = _CALL_UFUNC.get(node.func)
        if fn_tok is None:
            raise VectorizeError(f"unknown intrinsic {node.func!r}")
        return self._emit_ufunc(fn_tok, getattr(np, fn_tok[3:]), args)

    def _select(self, node: E.Select) -> _Value:
        cond = self.compile(node.cond)
        if cond.is_const:
            taken, other = ((node.then, node.otherwise) if cond.const
                            else (node.otherwise, node.then))
            # Pruning is exact only when both branches share a dtype
            # (np.where promotes to the common type).
            if self._infer_dtype(taken) == self._infer_dtype(other):
                self.stats.branches_pruned += 1
                return self.compile(taken)
        then = self.compile(node.then)
        other = self.compile(node.otherwise)
        if all(v.is_const for v in (cond, then, other)):
            result = np.where(cond.const, then.const, other.const)[()]
            self.stats.constants_folded += 1
            return self._const(result)
        with np.errstate(all="ignore"):
            r = np.where(self._sample(cond), self._sample(then),
                         self._sample(other))
        mask = cond.mask | then.mask | other.mask
        template = (f"np.where({self._tok(cond)}, {self._tok(then)}, "
                    f"{self._tok(other)})")
        return self._emit_expr(template, np.asarray(r).dtype, mask,
                               [cond, then, other])

    def _cast(self, node: E.Cast) -> _Value:
        val = self.compile(node.value)
        dt = _np_dtype(node.dtype)
        if val.is_const:
            self.stats.constants_folded += 1
            return self._const(np.dtype(dt).type(val.const))
        template = f"{self._tok(val)}.astype(np.{np.dtype(dt).name})"
        return self._emit_expr(template, dt, val.mask, [val])

    # -- tensor reads --------------------------------------------------
    def _tensor_alias(self, tensor: E.Tensor) -> str:
        alias = self.tensors.get(tensor.name)
        if alias is None:
            alias = f"_t{len(self.tensors)}"
            self.tensors[tensor.name] = alias
            self.tensor_shapes[tensor.name] = tensor.shape
        return alias

    def _gather(self, node: E.TensorElem) -> _Value:
        base = self._tensor_alias(node.tensor)
        self._gather_name = node.tensor.name
        dtype = np.dtype(_np_dtype(node.tensor.dtype))
        idx = [self.compile(i) for i in node.indices]
        self.stats.gathers += 1
        block = self._target_block(idx)
        trip = block.trip

        loop_ids = {id(lv): lv for lv in self._active_loops.values()}
        kinds = []
        for v in idx:
            if id(v) in loop_ids:
                kinds.append(("loopvar", v))
            elif any(v is g for g in self.grids.values()):
                j = next(j for j, g in self.grids.items() if v is g)
                kinds.append(("grid", j))
            elif any(v is b for b in self.batch_vals.values()):
                name = next(n for n, b in self.batch_vals.items() if v is b)
                kinds.append(("batch", name))
            elif id(v) in self._rgrids:
                kinds.append(("rgrid", self._rgrids[id(v)]))
            elif v.mask == frozenset():
                kinds.append(("scalar", v))
            else:
                kinds.append(("general", v))

        grid_axes = [j for k, j in kinds if k == "grid"]
        rgrid_info = [info for k, info in kinds if k == "rgrid"]
        has_batch = any(k == "batch" for k, _ in kinds)
        # slice-typed indices (output axes and vectorized reduce axes) must
        # land on strictly increasing result dimensions for the flat gather
        slice_pos = [info if k == "grid" else info[0]
                     for k, info in kinds if k in ("grid", "rgrid")]
        grids_ok = all(a < b for a, b in zip(slice_pos, slice_pos[1:]))
        no_general = not any(k == "general" for k, _ in kinds)
        loopvars = [v for k, v in kinds if k == "loopvar"]
        mask = frozenset()
        for v in idx:
            mask |= v.mask

        if (loopvars and no_general and grids_ok and not rgrid_info
                and self._hoistable(kinds)):
            return self._hoisted_gather(base, dtype, kinds, idx,
                                        has_batch, grid_axes)

        if all(v.mask == frozenset() for v in idx):
            # the interpreter's scalar path: base[tuple(int(i) ...)]
            toks = ", ".join(f"int({self._tok(v)})" for v in idx)
            template = f"{base}[({toks})]" if idx else f"{base}[()]"
            self._record_load(dtype, False, (), trip)
            return self._emit_expr(template, dtype, (), idx, block=block)

        if no_general and grids_ok:
            return self._fast_gather(base, dtype, kinds, mask, idx, block,
                                     trip, has_batch, grid_axes)

        toks = []
        for (kind, info), v in zip(kinds, idx):
            if kind == "grid":
                toks.append(f"_g{info}")
            elif kind == "batch":
                toks.append(f"_b_{info}")
            else:
                toks.append(self._tok(v))
        template = f"{base}[{', '.join(toks)}]"
        # vectorized-reduce dims (mask positions >= n) are not output axes:
        # account them as a fixed per-item multiplier, not a sizes[] axis
        extra = 1
        for j in mask:
            if j != _BATCH and j >= self.n:
                extra *= self.red_extents[j - self.n]
        self._record_load(dtype, _BATCH in mask,
                          tuple(sorted(j for j in mask
                                       if j != _BATCH and j < self.n)),
                          trip * extra, extra_extent=extra)
        return self._emit_expr(template, dtype, mask, idx, block=block)

    def _hoistable(self, kinds) -> bool:
        """A loop-var-indexed gather can be pre-gathered outside its
        reduce loops when the remaining indices are loop-invariant (and
        integer-typed, so advanced-index semantics match)."""
        min_loop_depth = min(v.block.depth for k, v in kinds
                             if k == "loopvar")
        for kind, info in kinds:
            if kind == "scalar":
                if info.np_dtype is None or info.np_dtype.kind not in "iu":
                    return False
                if not info.is_const and info.block.depth >= min_loop_depth:
                    return False
        return True

    def _hoisted_gather(self, base, dtype, kinds, idx, has_batch,
                        grid_axes) -> _Value:
        """Pre-gather whole rows spanning the reduce domain(s) outside the
        loop; the in-loop read becomes a basic-index view.  Element values
        are identical to the per-iteration gather, so this is exact."""
        self.stats.fast_gathers += 1
        self.stats.hoisted_gathers += 1
        pre_ops = []     # loop-invariant operands
        pre_toks = []    # pre-gather subscript
        slice_kinds = []  # dims of the pre-gather result after [B?]
        extra_extent = 1
        for (kind, info), v in zip(kinds, idx):
            if kind == "loopvar":
                lo, hi = self._loop_doms[v.name]
                pre_toks.append(f"{lo}:{hi}")
                slice_kinds.append(("loop", v, lo))
                extra_extent *= hi - lo
            elif kind == "grid":
                pre_toks.append(f"_lo{info}:_hi{info}")
                slice_kinds.append(("grid", info, 0))
            elif kind == "batch":
                pre_toks.append(f"_f_{info}")
                pre_ops.append(v)
            else:  # integer scalar (advanced, broadcasts with the flats)
                pre_toks.append(self._tok(v))
                pre_ops.append(v)

        pre_template = f"{base}[{', '.join(pre_toks)}]"
        pre_block = self._target_block(pre_ops)
        memo_key = (pre_template, id(pre_block))
        pre = self._pre_memo.get(memo_key)
        if pre is None:
            self._record_load(dtype, has_batch, tuple(grid_axes),
                              pre_block.trip * extra_extent,
                              extra_extent=extra_extent)
            pre = self._emit_expr(pre_template, dtype, (), pre_ops,
                                  block=pre_block)
            pre.writable = False
            self._pre_memo[memo_key] = pre
        else:
            self.stats.cse_hits += 1

        view_toks = [":"] if has_batch else []
        for kind, info, lo in slice_kinds:
            if kind == "grid":
                view_toks.append(":")
            else:
                view_toks.append(f"{info.name}" if lo == 0
                                 else f"({info.name} - {lo})")
        template = f"{pre.name}[{', '.join(view_toks)}]"
        mask = (frozenset([_BATCH]) if has_batch else frozenset())
        mask |= frozenset(grid_axes)
        if mask and not (has_batch and len(grid_axes) == self.n
                         and self.n_red == 0):
            lead = "_B" if has_batch else "1"
            dims = ([lead] + [f"_e{j}" if j in grid_axes else "1"
                              for j in range(self.n)]
                    + ["1"] * self.n_red)
            template += f".reshape(({', '.join(dims)}))"
        val = self._emit_expr(template, dtype, mask,
                              [pre] + [v for k, v in kinds
                                       if k == "loopvar"])
        val.writable = False  # a view of the pre-gather buffer
        return val

    def _record_load(self, dtype, has_batch, axes, trip,
                     extra_extent=1) -> None:
        self.stats.loads.append((dtype.itemsize, has_batch, tuple(axes),
                                 trip, getattr(self, "_gather_name", "")))
        if has_batch:
            ws = dtype.itemsize * extra_extent
            for j in axes:
                ws *= self.op.axis[j].extent
            self.stats.workset_bytes_per_item += ws

    def _fast_gather(self, base, dtype, kinds, mask, idx, block, trip,
                     has_batch, grid_axes) -> _Value:
        """Row-gather + slice: batch vars index as flat ``(B,)`` arrays and
        output axes as slices, so numpy gathers rows instead of evaluating
        a pointwise broadcast index."""
        self.stats.fast_gathers += 1
        toks = []
        rgrid_cov = {}
        for (kind, info), v in zip(kinds, idx):
            if kind == "grid":
                toks.append(f"_lo{info}:_hi{info}")
            elif kind == "rgrid":
                pos, lo, hi = info
                toks.append(f"{lo}:{hi}")
                rgrid_cov[pos] = hi - lo
            elif kind == "batch":
                toks.append(f"_f_{info}")
            else:
                toks.append(self._tok(v))
        template = f"{base}[{', '.join(toks)}]"
        # Advanced dims (the broadcast (B,) of flats+scalars) lead, slice
        # dims follow in positional order -- reshape to full rank unless
        # the natural layout already is the full-rank shape.
        if not (has_batch and len(grid_axes) == self.n
                and len(rgrid_cov) == self.n_red):
            lead = "_B" if has_batch else "1"
            dims = [lead] + [f"_e{j}" if j in grid_axes else "1"
                             for j in range(self.n)]
            dims += [str(rgrid_cov.get(self.n + i, 1))
                     for i in range(self.n_red)]
            template += f".reshape(({', '.join(dims)}))"
        extra = 1
        for e in rgrid_cov.values():
            extra *= e
        self._record_load(dtype, has_batch, tuple(grid_axes), trip * extra,
                          extra_extent=extra)
        val = self._emit_expr(template, dtype, mask, idx, block=block)
        # without a (B,) flat the subscript is basic indexing -- the result
        # views the input tensor, so out= must never write into it
        val.writable = has_batch
        return val

    # -- reductions ----------------------------------------------------
    def _reduce(self, node: E.Reduce) -> _Value:
        for ax in node.axes:
            if ax.name in self._active_loops or ax.name in self.axis_pos:
                raise VectorizeError(
                    f"reduce axis {ax.name!r} shadows an enclosing axis")
        if any(ax.extent == 0 for ax in node.axes):
            # interpreter: empty domain yields float32(identity)
            return self._const(np.float32(node.identity))
        if all(id(ax) in self.red_pos for ax in node.axes):
            return self._vector_reduce(node)

        parent = self.stack[-1]
        loops = []
        trip = parent.trip
        for ax in node.axes:
            trip *= ax.extent
            self._loopvar += 1
            var = f"_r{self._loopvar}"
            body = self._push_block(trip)
            lv = _Value(var, np.int64, (), body, writable=False)
            self._active_loops[ax.name] = lv
            self._loop_doms[var] = ax.dom
            self._remember(("iv", ax.name), lv)
            body.items.append(_Raw(f"{var} = np.int64({var})"))
            loops.append((ax, var, body))

        val = self.compile(node.source)

        if val.is_const and trip // parent.trip <= _FOLD_TRIP_LIMIT:
            # all-constant reduction: run the exact combine at compile time
            for ax, _, _ in loops:
                del self._active_loops[ax.name]
            for _ in loops:
                self._pop_block()
            fn = _combine_fn(node.combiner)
            acc = None
            with np.errstate(all="ignore"):
                for _ in range(trip // parent.trip):
                    acc = val.const if acc is None else fn(acc, val.const)
            self.stats.constants_folded += 1
            return self._const(acc)

        self._acc += 1
        acc_name = f"_a{self._acc}"
        innermost = loops[-1][2]
        if val.mask == frozenset():
            init, use_out = "plain", False
        elif val.block is innermost:
            # fresh buffer every iteration: alias it, then combine in place
            init, use_out = "alias", True
        else:
            # loop-invariant array: copy once, then combine in place
            init, use_out = "copy", True
        innermost.items.append(
            _Combine(acc_name, val, self._tok(val),
                     _COMBINE_UFUNC[node.combiner], init, use_out))
        self.stats.instructions += 1

        nest = None
        for ax, var, body in reversed(loops):
            del self._active_loops[ax.name]
            self._pop_block()
            if nest is not None:
                body.items.append(nest)
            lo, hi = ax.dom
            nest = _Loop(var, lo, hi, body)
            self.stats.loops += 1
        parent.items.append(_Init(acc_name))
        parent.items.append(nest)
        acc = _Value(acc_name, val.np_dtype, val.mask, parent)
        return acc

    def _vector_reduce(self, node: E.Reduce) -> _Value:
        """Lower a small-domain reduction to one ``ufunc.reduce`` over
        extra array dimensions.  ``max``/``min`` are exact; ``sum`` and
        ``prod`` use numpy's pairwise order (float rounding only)."""
        positions = []
        for ax in node.axes:
            pos = self.red_pos[id(ax)]
            positions.append(pos)
            if self._memo.get(("iv", ax.name)) is None:
                lo, hi = ax.dom
                # defined in the prelude (only if the body references it)
                rg = _Value(f"_rg{pos}", np.int64, (pos,), self.root,
                            writable=False)
                self._rgrids[id(rg)] = (pos, lo, hi)
                self._remember(("iv", ax.name), rg)

        val = self.compile(node.source)
        trip = 1
        for ax in node.axes:
            trip *= ax.extent
        if val.is_const:
            # all-constant reduction: run the exact combine at compile
            # time (the domain is <= _VEC_TRIP_LIMIT by construction)
            fn = _combine_fn(node.combiner)
            acc = None
            with np.errstate(all="ignore"):
                for _ in range(trip):
                    acc = val.const if acc is None else fn(acc, val.const)
            self.stats.constants_folded += 1
            return self._const(acc)

        result = val
        covered = sorted(p for p in positions if p in val.mask)
        if covered:
            dims = tuple(1 + p for p in covered)
            template = (f"{_COMBINE_UFUNC[node.combiner]}.reduce("
                        f"{self._tok(val)}, axis={dims!r}, keepdims=True, "
                        f"dtype=np.{val.np_dtype.name})")
            result = self._emit_expr(template, val.np_dtype,
                                     val.mask - frozenset(positions),
                                     [val])
            self.stats.vector_reduces += 1
        # Axes the body does not span: the interpreter still combines
        # ``extent`` copies.  For bool, or/and of copies is the identity.
        missing = 1
        for ax in node.axes:
            if self.red_pos[id(ax)] not in val.mask:
                missing *= ax.extent
        if missing > 1 and val.np_dtype.kind != "b":
            if node.combiner == "sum":
                result = self._emit_ufunc("np.multiply", np.multiply,
                                          [result, self._const(missing)])
            elif node.combiner == "prod":
                result = self._emit_ufunc("np.power", np.power,
                                          [result, self._const(missing)])
        return result


def _np_dtype(dtype: str):
    try:
        return _NP_DTYPES[dtype]
    except KeyError:
        raise ValueError(f"unsupported dtype {dtype!r}") from None


def _unit(dtype: np.dtype):
    return np.ones((), dtype=dtype)[()]


def _bin_fn(op: str):
    return getattr(np, _BIN_UFUNC[op][3:])


def _combine_fn(combiner: str):
    return getattr(np, _COMBINE_UFUNC[combiner][3:])


def _call_sample(func: str, args):
    if func == "sigmoid":
        return 1.0 / (1.0 + np.exp(-args[0]))
    if func == "pow":
        return np.power(args[0], args[1])
    return getattr(np, _CALL_UFUNC[func][3:])(args[0])


# ----------------------------------------------------------------------
# liveness and rendering
# ----------------------------------------------------------------------

def _positions(block: _Block, counter: list, last_use: dict) -> None:
    """Number instructions in execution order and record each register's
    final consumer, so rendering can retire buffers with ``out=``."""
    for item in block.items:
        if isinstance(item, _Instr):
            counter[0] += 1
            item.pos = counter[0]
            for v in item.operands:
                last_use[v.name] = counter[0]
        elif isinstance(item, _Combine):
            counter[0] += 1
            item.pos = counter[0]
            if not item.val.is_const:
                last_use[item.val.name] = counter[0]
        elif isinstance(item, _Loop):
            _positions(item.body, counter, last_use)


def _render_block(block: _Block, indent: int, lines: list,
                  last_use: dict, stats: ProgramStats) -> None:
    pad = "    " * indent
    for item in block.items:
        if isinstance(item, _Raw):
            lines.append(pad + item.text)
        elif isinstance(item, _Init):
            lines.append(pad + f"{item.acc} = None")
        elif isinstance(item, _Loop):
            lines.append(pad + f"for {item.var} in "
                               f"range({item.lo}, {item.hi}):")
            _render_block(item.body, indent + 1, lines, last_use, stats)
        elif isinstance(item, _Combine):
            first = {"alias": item.tok, "copy": f"{item.tok}.copy()",
                     "plain": item.tok}[item.init]
            rest = (f"{item.fn}({item.acc}, {item.tok}, out={item.acc})"
                    if item.use_out else
                    f"{item.fn}({item.acc}, {item.tok})")
            lines.append(pad + f"{item.acc} = {first} "
                               f"if {item.acc} is None else {rest}")
        elif isinstance(item, _Instr):
            if item.fn is None:
                lines.append(pad + f"{item.dest.name} = {item.template}")
                continue
            out_tok = ""
            if item.inplace_ok and item.dest.mask:
                for v in item.operands:
                    if (v.writable and v.block is item.dest.block
                            and v.np_dtype == item.dest.np_dtype
                            and v.mask == item.dest.mask
                            and last_use.get(v.name) == item.pos):
                        out_tok = f", out={v.name}"
                        stats.inplace_ops += 1
                        break
            lines.append(pad + f"{item.dest.name} = "
                               f"{item.fn}({', '.join(item.tokens)}"
                               f"{out_tok})")


# ----------------------------------------------------------------------
# the compiled program
# ----------------------------------------------------------------------


class VectorProgram:
    """A compiled batched-UDF: generated straight-line numpy source.

    ``run`` has the same contract as
    :func:`repro.tensorir.evaluator.evaluate_batched` (non-empty batch):
    bindings for placeholders, 1-D int64 batch variables of equal length,
    optional per-axis ``axis_ranges`` tiling, and a ``(B, *shape)`` result.
    Programs are immutable and thread-safe: execution touches only local
    buffers, so chunks may run concurrently under a
    :class:`~repro.tensorir.runtime.WorkPool`.
    """

    def __init__(self, name, fn, source, stats, axes, out_dtype,
                 tensor_names, batch_names):
        self.name = name
        self._fn = fn
        self.source = source
        self.stats = stats
        self.axes = tuple(axes)
        self.out_dtype = np.dtype(out_dtype)
        self.tensor_names = tuple(tensor_names)
        self.batch_names = tuple(batch_names)
        self.default_sizes = tuple(ax.extent for ax in self.axes)

    def run(self, bindings: Mapping[str, np.ndarray],
            batch_vars: Mapping[str, np.ndarray],
            axis_ranges: Mapping[str, tuple[int, int]] | None = None,
            ) -> np.ndarray:
        """Execute the program once per batch element (see
        :func:`~repro.tensorir.evaluator.evaluate_batched`)."""
        items = list(batch_vars.items())
        if not items:
            raise ValueError(
                "compiled programs require at least one batch variable")
        batch_len = len(np.asarray(items[0][1]))
        flats = {}
        for name, arr in items:
            arr = np.asarray(arr, dtype=np.int64)
            if arr.ndim != 1 or len(arr) != batch_len:
                raise ValueError(
                    "all batch variables must be 1-D of equal length")
            flats[name] = arr
        for name in self.batch_names:
            if name not in flats:
                raise KeyError(
                    f"unbound variable or placeholder {name!r}")
        for name in self.tensor_names:
            if name not in bindings:
                raise KeyError(
                    f"unbound variable or placeholder {name!r}")
        lohi = []
        for ax in self.axes:
            lo, hi = ax.dom
            if axis_ranges and ax.name in axis_ranges:
                lo, hi = axis_ranges[ax.name]
                if not (ax.dom[0] <= lo <= hi <= ax.dom[1]):
                    raise ValueError(
                        f"axis range {lo, hi} outside domain of {ax.name}")
            lohi.append((int(lo), int(hi)))
        raw = self._fn(bindings, flats, lohi, batch_len)
        full = (batch_len,) + tuple(hi - lo for lo, hi in lohi)
        val = np.asarray(raw)
        if val.shape != full:
            val = np.broadcast_to(val, full)
        if val.dtype == self.out_dtype and val.flags["C_CONTIGUOUS"]:
            return val
        return np.ascontiguousarray(val, dtype=self.out_dtype)

    def bytes_moved(self, batch: int, sizes=None, exclude=()) -> int:
        """Bytes gathered from input tensors plus bytes written to the
        output, for one chunk of ``batch`` elements over ``sizes``-shaped
        output axes (defaults to the full axis extents).

        ``exclude`` names input tensors whose gathers should not be
        counted -- the fused executor passes the chunk-resident chain
        buffers here, since those values never round-trip through memory.
        """
        sizes = (tuple(sizes) if sizes is not None
                 else self.default_sizes)
        total = 0
        for itemsize, has_batch, axes, trip, tname in self.stats.loads:
            if tname in exclude:
                continue
            moved = itemsize * trip * (batch if has_batch else 1)
            for j in axes:
                moved *= sizes[j]
            total += moved
        out_items = batch
        for s in sizes:
            out_items *= s
        return int(total + out_items * self.out_dtype.itemsize)

    def __repr__(self):
        s = self.stats
        return (f"VectorProgram({self.name}, instrs={s.instructions}, "
                f"cse={s.cse_hits}, folded={s.constants_folded}, "
                f"inplace={s.inplace_ops}, "
                f"fast_gathers={s.fast_gathers}/{s.gathers})")


def _axis_prelude(compiler: _Compiler, body_text: str) -> list[str]:
    """Lines binding lo/hi/extent/grid/batch locals -- only those the
    rendered body actually references."""

    def used(tok: str) -> bool:
        return re.search(rf"\b{re.escape(tok)}\b", body_text) is not None

    n = compiler.n
    rank = 1 + n + compiler.n_red
    lines = []
    for j in range(n):
        need_g = used(f"_g{j}")
        need_e = used(f"_e{j}")
        if need_g or need_e or used(f"_lo{j}"):
            lines.append(f"    _lo{j}, _hi{j} = _lohi[{j}]")
        if need_e:
            lines.append(f"    _e{j} = _hi{j} - _lo{j}")
        if need_g:
            dims = ["1"] * (1 + j) + ["-1"] + ["1"] * (rank - 2 - j)
            lines.append(
                f"    _g{j} = np.arange(_lo{j}, _hi{j}, "
                f"dtype=np.int64).reshape(({', '.join(dims)}))")
    for pos, lo, hi in compiler._rgrids.values():
        if used(f"_rg{pos}"):
            dims = ["1"] * (1 + pos) + ["-1"] + ["1"] * (rank - 2 - pos)
            lines.append(
                f"    _rg{pos} = np.arange({lo}, {hi}, "
                f"dtype=np.int64).reshape(({', '.join(dims)}))")
    for name in compiler.batch_vals:
        need_b = used(f"_b_{name}")
        if need_b or used(f"_f_{name}"):
            lines.append(f"    _f_{name} = _flat[{name!r}]")
        if need_b:
            btup = "(_B," + " 1," * (rank - 1) + ")"
            lines.append(f"    _b_{name} = _f_{name}.reshape({btup})")
    return lines


def compile_batched(tensor: E.Tensor) -> VectorProgram:
    """Compile a compute tensor's body into a :class:`VectorProgram`.

    Raises :class:`VectorizeError` for expressions outside the supported
    subset (callers should fall back to the interpreter) and ``TypeError``
    if ``tensor`` is not a compute tensor.
    """
    op = tensor.op
    if not isinstance(op, E.ComputeOp):
        raise TypeError("compile_batched requires a compute tensor")
    out_dtype = np.dtype(_np_dtype(tensor.dtype))

    compiler = _Compiler(op)
    root = compiler.compile(op.body)

    last_use: dict[str, float] = {}
    _positions(compiler.root, [0], last_use)
    if not root.is_const:
        last_use[root.name] = float("inf")

    body_lines: list[str] = []
    _render_block(compiler.root, 1, body_lines, last_use, compiler.stats)
    tok = compiler._tok(root)
    if compiler.n_red and root.mask:
        # drop the (size-1) vectorized-reduce dims from the result
        body_lines.append(
            f"    return {tok}.reshape({tok}.shape[:{1 + compiler.n}])")
    else:
        body_lines.append(f"    return {tok}")
    body_text = "\n".join(body_lines)

    lines = [f"def _udf(_T, _flat, _lohi, _B):"]
    for tname, alias in compiler.tensors.items():
        lines.append(f"    {alias} = np.asarray(_T[{tname!r}])")
    lines.extend(_axis_prelude(compiler, body_text))
    lines.append(body_text)
    source = "\n".join(lines) + "\n"

    namespace = {"np": np, "inf": float("inf"), "nan": float("nan")}
    code = compile(source, f"<vectorize:{tensor.name}>", "exec")
    exec(code, namespace)

    return VectorProgram(
        name=tensor.name,
        fn=namespace["_udf"],
        source=source,
        stats=compiler.stats,
        axes=op.axis,
        out_dtype=out_dtype,
        tensor_names=tuple(compiler.tensors),
        batch_names=tuple(compiler.batch_vals),
    )
