"""Tensor-expression language.

This module implements the expression layer of the mini tensor compiler: a
small, typed AST for scalar expressions over tensor elements, plus the
``placeholder`` / ``compute`` / ``reduce_axis`` builders that the FeatGraph
programming interface (paper Figs. 3, 4, 8, 9) is written against.

Expressions are immutable.  Arithmetic on :class:`Expr` builds new nodes, so
user code reads like ordinary math::

    XV = placeholder((n, d), name="XV")
    k = reduce_axis((0, d), name="k")
    out = compute((d2,), lambda i: sum(XV[src, k] * W[k, i], axis=k))
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

__all__ = [
    "Expr",
    "Var",
    "IterVar",
    "IntImm",
    "FloatImm",
    "BinOp",
    "Call",
    "Select",
    "Cast",
    "Reduce",
    "TensorElem",
    "Tensor",
    "Operation",
    "ComputeOp",
    "PlaceholderOp",
    "placeholder",
    "compute",
    "reduce_axis",
    "sum",
    "max",
    "min",
    "prod",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "maximum",
    "minimum",
    "select",
    "const",
]

_name_counter = itertools.count()


def _fresh(prefix: str) -> str:
    return f"{prefix}{next(_name_counter)}"


def const(value: float | int, dtype: str | None = None) -> "Expr":
    """Wrap a Python number as an immediate expression node."""
    if isinstance(value, Expr):
        return value
    if dtype is None:
        dtype = "int64" if isinstance(value, int) and not isinstance(value, bool) else "float32"
    if dtype.startswith("int"):
        return IntImm(int(value), dtype)
    return FloatImm(float(value), dtype)


class Expr:
    """Base class for scalar expression nodes.

    Supports Python arithmetic operators, producing :class:`BinOp` nodes.
    Every node carries a ``dtype`` string ("float32", "int64", ...).
    """

    dtype: str = "float32"

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, const(other))

    def __radd__(self, other):
        return BinOp("+", const(other), self)

    def __sub__(self, other):
        return BinOp("-", self, const(other))

    def __rsub__(self, other):
        return BinOp("-", const(other), self)

    def __mul__(self, other):
        return BinOp("*", self, const(other))

    def __rmul__(self, other):
        return BinOp("*", const(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, const(other))

    def __rtruediv__(self, other):
        return BinOp("/", const(other), self)

    def __floordiv__(self, other):
        return BinOp("//", self, const(other))

    def __rfloordiv__(self, other):
        return BinOp("//", const(other), self)

    def __mod__(self, other):
        return BinOp("%", self, const(other))

    def __neg__(self):
        return BinOp("-", const(0.0 if self.dtype.startswith("float") else 0), self)

    def __pow__(self, other):
        return Call("pow", (self, const(other)))

    # -- comparisons (used by select) ------------------------------------
    def __lt__(self, other):
        return BinOp("<", self, const(other), dtype="bool")

    def __le__(self, other):
        return BinOp("<=", self, const(other), dtype="bool")

    def __gt__(self, other):
        return BinOp(">", self, const(other), dtype="bool")

    def __ge__(self, other):
        return BinOp(">=", self, const(other), dtype="bool")

    def equal(self, other):
        """Element-wise equality comparison node (``==`` is kept for identity)."""
        return BinOp("==", self, const(other), dtype="bool")

    def children(self) -> tuple["Expr", ...]:
        """Immediate sub-expressions; used by generic AST walkers."""
        return ()


class Var(Expr):
    """A free scalar variable, e.g. the ``src`` / ``dst`` / ``eid`` arguments
    that the sparse templates pass into a UDF."""

    def __init__(self, name: str | None = None, dtype: str = "int64"):
        self.name = name or _fresh("v")
        self.dtype = dtype

    def __repr__(self):
        return f"Var({self.name})"


class IterVar(Expr):
    """An iteration variable with an integer domain.

    ``kind`` distinguishes data-parallel axes (``"data"``) from reduction
    axes (``"reduce"``).  IterVars are themselves expressions so they can be
    used directly in tensor indices.
    """

    DATA = "data"
    REDUCE = "reduce"

    def __init__(self, dom: tuple[int, int], name: str | None = None, kind: str = DATA):
        lo, hi = dom
        if hi < lo:
            raise ValueError(f"empty iteration domain {dom!r}")
        self.dom = (int(lo), int(hi))
        self.name = name or _fresh("i")
        self.kind = kind
        self.dtype = "int64"

    @property
    def extent(self) -> int:
        return self.dom[1] - self.dom[0]

    def __repr__(self):
        return f"IterVar({self.name}, {self.dom}, {self.kind})"


class IntImm(Expr):
    """Integer immediate."""

    def __init__(self, value: int, dtype: str = "int64"):
        self.value = int(value)
        self.dtype = dtype

    def __repr__(self):
        return f"IntImm({self.value})"


class FloatImm(Expr):
    """Floating-point immediate."""

    def __init__(self, value: float, dtype: str = "float32"):
        self.value = float(value)
        self.dtype = dtype

    def __repr__(self):
        return f"FloatImm({self.value})"


_ARITH_OPS = {"+", "-", "*", "/", "//", "%", "max", "min"}
_CMP_OPS = {"<", "<=", ">", ">=", "==", "!="}


class BinOp(Expr):
    """Binary operation node. ``op`` is one of ``+ - * / // % max min`` or a
    comparison operator."""

    def __init__(self, op: str, a: Expr, b: Expr, dtype: str | None = None):
        if op not in _ARITH_OPS and op not in _CMP_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.a = a
        self.b = b
        if dtype is not None:
            self.dtype = dtype
        elif op in _CMP_OPS:
            self.dtype = "bool"
        else:
            self.dtype = a.dtype if a.dtype.startswith("float") else b.dtype

    def children(self):
        return (self.a, self.b)

    def __repr__(self):
        return f"({self.a!r} {self.op} {self.b!r})"


_INTRINSICS = {
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "abs",
    "pow",
    "floor",
    "ceil",
}


class Call(Expr):
    """Intrinsic call node (``exp``, ``log``, ``sqrt``, ``tanh``, ...)."""

    def __init__(self, func: str, args: Sequence[Expr], dtype: str = "float32"):
        if func not in _INTRINSICS:
            raise ValueError(f"unknown intrinsic {func!r}")
        self.func = func
        self.args = tuple(args)
        self.dtype = dtype

    def children(self):
        return self.args

    def __repr__(self):
        return f"{self.func}({', '.join(map(repr, self.args))})"


class Select(Expr):
    """Ternary select: ``cond ? then : otherwise``."""

    def __init__(self, cond: Expr, then: Expr, otherwise: Expr):
        self.cond = cond
        self.then = then
        self.otherwise = otherwise
        self.dtype = then.dtype

    def children(self):
        return (self.cond, self.then, self.otherwise)

    def __repr__(self):
        return f"select({self.cond!r}, {self.then!r}, {self.otherwise!r})"


class Cast(Expr):
    """Dtype conversion node."""

    def __init__(self, value: Expr, dtype: str):
        self.value = value
        self.dtype = dtype

    def children(self):
        return (self.value,)

    def __repr__(self):
        return f"cast({self.value!r}, {self.dtype})"


_REDUCER_IDENTITY = {
    "sum": 0.0,
    "prod": 1.0,
    "max": float("-inf"),
    "min": float("inf"),
}


class Reduce(Expr):
    """Commutative reduction of ``source`` over one or more reduce axes.

    ``combiner`` is one of ``sum``, ``prod``, ``max``, ``min``.  Any
    commutative reducer is allowed by the paper's templates; these four cover
    all of DGL's builtin aggregators.
    """

    def __init__(self, combiner: str, source: Expr, axes: Sequence[IterVar]):
        if combiner not in _REDUCER_IDENTITY:
            raise ValueError(f"unknown reducer {combiner!r}")
        axes = tuple(axes)
        if not axes:
            raise ValueError("Reduce requires at least one reduce axis")
        for ax in axes:
            if ax.kind != IterVar.REDUCE:
                raise ValueError(f"axis {ax!r} is not a reduce axis")
        self.combiner = combiner
        self.source = source
        self.axes = axes
        self.dtype = source.dtype

    @property
    def identity(self) -> float:
        return _REDUCER_IDENTITY[self.combiner]

    def children(self):
        return (self.source,)

    def __repr__(self):
        names = ",".join(a.name for a in self.axes)
        return f"{self.combiner}({self.source!r}, axis=[{names}])"


class TensorElem(Expr):
    """A scalar element read ``tensor[i0, i1, ...]``."""

    def __init__(self, tensor: "Tensor", indices: Sequence[Expr]):
        if len(indices) != len(tensor.shape):
            raise ValueError(
                f"tensor {tensor.name} has rank {len(tensor.shape)}, "
                f"got {len(indices)} indices"
            )
        self.tensor = tensor
        self.indices = tuple(const(i) for i in indices)
        self.dtype = tensor.dtype

    def children(self):
        return self.indices

    def __repr__(self):
        idx = ", ".join(map(repr, self.indices))
        return f"{self.tensor.name}[{idx}]"


class Operation:
    """Base class for tensor-producing operations."""

    name: str


class PlaceholderOp(Operation):
    """Source operation for an input tensor bound at kernel-call time."""

    def __init__(self, name: str, shape: tuple[int, ...], dtype: str):
        self.name = name
        self.shape = shape
        self.dtype = dtype


class ComputeOp(Operation):
    """An operation defined by a per-element expression over output axes."""

    def __init__(self, name: str, axes: Sequence[IterVar], body: Expr):
        self.name = name
        self.axis = tuple(axes)
        self.body = body
        self.shape = tuple(ax.extent for ax in self.axis)

    @property
    def reduce_axis(self) -> tuple[IterVar, ...]:
        """Reduce axes referenced by the body (in first-appearance order)."""
        seen: dict[str, IterVar] = {}

        def walk(e: Expr):
            if isinstance(e, Reduce):
                for ax in e.axes:
                    seen.setdefault(ax.name, ax)
            for c in e.children():
                walk(c)

        walk(self.body)
        return tuple(seen.values())

    def input_tensors(self) -> tuple["Tensor", ...]:
        """Placeholder/compute tensors read by the body, deduplicated."""
        seen: dict[str, Tensor] = {}

        def walk(e: Expr):
            if isinstance(e, TensorElem):
                seen.setdefault(e.tensor.name, e.tensor)
            for c in e.children():
                walk(c)

        walk(self.body)
        return tuple(seen.values())

    def free_vars(self) -> tuple[Var, ...]:
        """Free :class:`Var` nodes (e.g. ``src``/``dst``/``eid``) in the body."""
        own = {ax.name for ax in self.axis} | {ax.name for ax in self.reduce_axis}
        seen: dict[str, Var] = {}

        def walk(e: Expr):
            if isinstance(e, Var) and not isinstance(e, IterVar):
                if e.name not in own:
                    seen.setdefault(e.name, e)
            for c in e.children():
                walk(c)

        walk(self.body)
        return tuple(seen.values())


class Tensor:
    """A multi-dimensional value: either a placeholder or the result of a
    :func:`compute`.  Indexing yields :class:`TensorElem` expression nodes."""

    def __init__(self, op: Operation, shape: tuple[int, ...], dtype: str, name: str):
        self.op = op
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self.name = name

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def axis(self) -> tuple[IterVar, ...]:
        if isinstance(self.op, ComputeOp):
            return self.op.axis
        raise TypeError(f"{self.name} is a placeholder; it has no compute axes")

    @property
    def reduce_axis(self) -> tuple[IterVar, ...]:
        if isinstance(self.op, ComputeOp):
            return self.op.reduce_axis
        return ()

    def __getitem__(self, indices) -> TensorElem:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return TensorElem(self, indices)

    def __repr__(self):
        return f"Tensor({self.name}, shape={self.shape}, dtype={self.dtype})"


def placeholder(shape: Sequence[int], name: str | None = None, dtype: str = "float32") -> Tensor:
    """Declare an input tensor, bound to a numpy array at call time."""
    name = name or _fresh("ph")
    shape = tuple(int(s) for s in shape)
    op = PlaceholderOp(name, shape, dtype)
    return Tensor(op, shape, dtype, name)


def compute(
    shape: Sequence[int],
    fcompute: Callable[..., Expr],
    name: str | None = None,
) -> Tensor:
    """Define a tensor by a per-element expression.

    ``fcompute`` receives one :class:`IterVar` per output dimension and must
    return the scalar :class:`Expr` for that element.
    """
    name = name or _fresh("compute")
    shape = tuple(int(s) for s in shape)
    axes = tuple(IterVar((0, s), name=f"{name}_i{k}") for k, s in enumerate(shape))
    body = fcompute(*axes)
    body = const(body)
    op = ComputeOp(name, axes, body)
    return Tensor(op, shape, body.dtype, name)


def reduce_axis(dom: tuple[int, int], name: str | None = None) -> IterVar:
    """Declare a reduction axis with domain ``[dom[0], dom[1])``."""
    return IterVar(dom, name=name or _fresh("k"), kind=IterVar.REDUCE)


def _as_axes(axis) -> tuple[IterVar, ...]:
    if isinstance(axis, IterVar):
        return (axis,)
    return tuple(axis)


def sum(expr: Expr, axis) -> Reduce:
    """Sum reduction over ``axis`` (an IterVar or list of IterVars)."""
    return Reduce("sum", const(expr), _as_axes(axis))


def max(expr: Expr, axis=None):
    """Max: with ``axis`` it is a reduction, without it an element-wise
    two-operand max is not meant -- use :func:`maximum` for that."""
    if axis is None:
        raise TypeError("tensorir.max requires a reduce axis; use maximum(a, b) for element-wise max")
    return Reduce("max", const(expr), _as_axes(axis))


def min(expr: Expr, axis) -> Reduce:
    """Min reduction over ``axis``."""
    return Reduce("min", const(expr), _as_axes(axis))


def prod(expr: Expr, axis) -> Reduce:
    """Product reduction over ``axis``."""
    return Reduce("prod", const(expr), _as_axes(axis))


def exp(x) -> Call:
    return Call("exp", (const(x),))


def log(x) -> Call:
    return Call("log", (const(x),))


def sqrt(x) -> Call:
    return Call("sqrt", (const(x),))


def tanh(x) -> Call:
    return Call("tanh", (const(x),))


def sigmoid(x) -> Call:
    return Call("sigmoid", (const(x),))


def maximum(a, b) -> BinOp:
    """Element-wise max of two expressions."""
    return BinOp("max", const(a), const(b))


def minimum(a, b) -> BinOp:
    """Element-wise min of two expressions."""
    return BinOp("min", const(a), const(b))


def relu(x) -> BinOp:
    """``max(x, 0)`` -- the activation used by the paper's MLP aggregation."""
    return maximum(const(x), const(0.0))


def select(cond: Expr, then, otherwise) -> Select:
    """Ternary select expression."""
    return Select(cond, const(then), const(otherwise))
