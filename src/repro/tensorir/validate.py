"""IR and schedule legality validation.

Illegal schedules used to fail deep inside codegen with an opaque traceback
-- or worse, lower to a silently-wrong loop nest.  This module makes
legality a first-class check with two entry points:

- :func:`validate_schedule` -- checks a :class:`~repro.tensorir.schedule.Stage`
  *before* lowering: split factors are positive and covering, ``bind`` /
  ``parallel`` annotations sit on outermost-eligible axes, thread tags are
  not double-booked, and no data axis has been reordered across a
  ``tree_reduce`` axis.  With a ``target``, target-specific rules apply
  (GPU thread bindings are rejected on a CPU kernel).

- :func:`validate_ir` -- structural checks on a lowered loop nest: every
  loop variable is bound exactly once along any path, every variable
  referenced by a statement -- store *or* guard -- is bound by an enclosing
  loop (or is a declared free variable such as ``src``/``dst``/``eid``),
  reduce axes appear only inside combiner updates, buffer store arity
  matches buffer rank, and ``Allocate`` extents are non-negative integers
  whose rank agrees with stores into the allocated buffer (the analysis
  footprint estimator relies on this).

Both raise eagerly with the offending axis/variable named, so a bad FDS
surfaces at :func:`repro.core.api.spmm` construction time rather than as a
wrong answer at run time.  :func:`repro.tensorir.lower.lower` calls both by
default.
"""

from __future__ import annotations

import numpy as np

from repro.tensorir import expr as E
from repro.tensorir import ir as I

__all__ = [
    "ScheduleError",
    "IRValidationError",
    "DEFAULT_FREE_VARS",
    "validate_schedule",
    "validate_ir",
]


class ScheduleError(ValueError):
    """An illegal schedule transformation or annotation.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    ``ValueError`` from schedule primitives keep working.
    """


class IRValidationError(ValueError):
    """A structurally invalid loop-nest IR tree."""


_BLOCK_TAGS = ("block.x", "block.y", "block.z")
_THREAD_TAGS = ("thread.x", "thread.y", "thread.z")


# ----------------------------------------------------------------------
# schedule legality
# ----------------------------------------------------------------------

def validate_schedule(stage, target: str | None = None) -> None:
    """Check the legality of one stage's schedule state.

    ``target`` ("cpu" / "gpu" / None) enables target-specific rules; with
    ``None`` only target-independent structure is checked.
    """
    from repro.tensorir.schedule import SplitRel, THREAD_TAGS

    op_name = stage.op.name
    leaves = list(stage.leaf_iter_vars)
    attrs = {ax.name: stage.iter_attrs.get(ax.name, {}) for ax in leaves}

    # --- split relations: factors positive, splits covering -----------
    for rel in stage.relations:
        if isinstance(rel, SplitRel):
            if rel.factor <= 0:
                raise ScheduleError(
                    f"split factor must be positive (got {rel.factor} for "
                    f"axis {rel.parent.name} of {op_name})")
            if rel.outer.extent * rel.factor < rel.parent.extent:
                raise ScheduleError(
                    f"split of axis {rel.parent.name} does not cover its "
                    f"extent: {rel.outer.extent} * {rel.factor} < "
                    f"{rel.parent.extent}")

    # --- thread tags: unique, legal kinds, block-before-thread --------
    tag_user: dict[str, E.IterVar] = {}
    for ax in leaves:
        a = attrs[ax.name]
        for key in ("bind", "tree_reduce"):
            tag = a.get(key)
            if tag is None:
                continue
            if tag not in THREAD_TAGS:
                raise ScheduleError(
                    f"unknown thread tag {tag!r} on axis {ax.name}; "
                    f"expected one of {THREAD_TAGS}")
            if tag in tag_user:
                raise ScheduleError(
                    f"thread tag {tag!r} bound to both axis "
                    f"{tag_user[tag].name} and axis {ax.name} of {op_name}")
            tag_user[tag] = ax
        if "bind" in a and ax.kind == E.IterVar.REDUCE:
            raise ScheduleError(
                f"reduce axis {ax.name} of {op_name} cannot be bound to "
                f"{a['bind']!r}; use tree_reduce for cooperative reductions")
        if "tree_reduce" in a:
            if ax.kind != E.IterVar.REDUCE:
                raise ScheduleError(
                    f"tree_reduce applies to reduce axes only; axis "
                    f"{ax.name} of {op_name} is a data axis")
            if a["tree_reduce"] not in _THREAD_TAGS:
                raise ScheduleError(
                    f"tree_reduce on axis {ax.name} must target a thread.* "
                    f"tag, got {a['tree_reduce']!r}")

    # block.* bindings must sit outside thread.* bindings
    bound_positions = {
        tag: pos for pos, ax in enumerate(leaves)
        for tag, owner in tag_user.items()
        if owner is ax and attrs[ax.name].get("bind") == tag
    }
    block_pos = [p for t, p in bound_positions.items() if t in _BLOCK_TAGS]
    thread_pos = [p for t, p in bound_positions.items() if t in _THREAD_TAGS]
    if block_pos and thread_pos and max(block_pos) > min(thread_pos):
        inner = leaves[max(block_pos)]
        outer = leaves[min(thread_pos)]
        raise ScheduleError(
            f"block-bound axis {inner.name} is nested inside thread-bound "
            f"axis {outer.name}; block.* bindings must be outermost")

    # --- no data axis inside (after) a tree-reduced axis --------------
    tree_positions = [pos for pos, ax in enumerate(leaves)
                      if "tree_reduce" in attrs[ax.name]]
    for tpos in tree_positions:
        for pos in range(tpos + 1, len(leaves)):
            if leaves[pos].kind == E.IterVar.DATA:
                raise ScheduleError(
                    f"data axis {leaves[pos].name} is ordered inside "
                    f"tree-reduced axis {leaves[tpos].name} of {op_name}; "
                    "reordering across a tree_reduce is illegal")

    # --- parallel: outermost-eligible only ----------------------------
    for pos, ax in enumerate(leaves):
        if attrs[ax.name].get("kind") != "parallel":
            continue
        if ax.kind == E.IterVar.REDUCE:
            raise ScheduleError(
                f"reduce axis {ax.name} of {op_name} cannot be marked "
                "parallel; reductions race across parallel workers")
        for prev in leaves[:pos]:
            pa = attrs[prev.name]
            if pa.get("kind") != "parallel" and "bind" not in pa:
                raise ScheduleError(
                    f"parallel axis {ax.name} of {op_name} is nested inside "
                    f"serial axis {prev.name}; parallel applies to "
                    "outermost-eligible axes only")

    # --- target-specific rules ----------------------------------------
    if target == "cpu":
        for ax in leaves:
            a = attrs[ax.name]
            if "bind" in a:
                raise ScheduleError(
                    f"axis {ax.name} of {op_name} is bound to GPU thread "
                    f"tag {a['bind']!r} but the kernel target is 'cpu'")
            if "tree_reduce" in a:
                raise ScheduleError(
                    f"axis {ax.name} of {op_name} requests a GPU tree "
                    "reduction but the kernel target is 'cpu'")


# ----------------------------------------------------------------------
# IR structural validation
# ----------------------------------------------------------------------

#: free variables every FeatGraph template declares for its UDF trace
DEFAULT_FREE_VARS = frozenset({"src", "dst", "eid"})


def _expr_vars(node: E.Expr, out: dict[str, E.Var]) -> None:
    """Collect every variable -- loop :class:`~repro.tensorir.expr.IterVar`
    or plain free :class:`~repro.tensorir.expr.Var` -- read by ``node``."""
    if isinstance(node, (E.IterVar, E.Var)):
        out.setdefault(node.name, node)
    if isinstance(node, E.Reduce):
        # A Reduce node binds its own axes: they are iterated by the
        # reduction itself, not by an enclosing loop.  Template loop nests
        # (see repro.core.compile) legitimately keep inline Reduce values in
        # their stores, so those axes must not be reported as free.
        inner: dict[str, E.Var] = {}
        for c in node.children():
            _expr_vars(c, inner)
        for ax in node.axes:
            inner.pop(ax.name, None)
        for name, var in inner.items():
            out.setdefault(name, var)
        return
    for c in node.children():
        _expr_vars(c, out)


def _check_store(stmt: I.Stmt, bound: dict[str, E.Var],
                 free: frozenset, in_reduce_loop: bool,
                 alloc_shapes: dict[str, tuple]) -> None:
    if not isinstance(stmt, I.Store):
        return
    if len(stmt.indices) != len(stmt.buffer.shape):
        raise IRValidationError(
            f"store to buffer {stmt.buffer.name} uses {len(stmt.indices)} "
            f"indices but the buffer has rank {len(stmt.buffer.shape)}")
    alloc_shape = alloc_shapes.get(stmt.buffer.name)
    if alloc_shape is not None and len(stmt.buffer.shape) != len(alloc_shape):
        raise IRValidationError(
            f"store to buffer {stmt.buffer.name} has rank "
            f"{len(stmt.buffer.shape)} but the enclosing allocation declares "
            f"rank {len(alloc_shape)}")
    used: dict[str, E.Var] = {}
    for idx in stmt.indices:
        _expr_vars(idx, used)
    _expr_vars(stmt.value, used)
    for name, var in used.items():
        if name not in bound and name not in free:
            kind = ("loop" if isinstance(var, E.IterVar) else "free")
            raise IRValidationError(
                f"{kind} variable {name} is referenced by a store to "
                f"{stmt.buffer.name} but not bound by any enclosing loop "
                "or declared free")
        if (stmt.combiner is None and isinstance(var, E.IterVar)
                and var.kind == E.IterVar.REDUCE):
            raise IRValidationError(
                f"reduce axis {name} is referenced by a plain store to "
                f"{stmt.buffer.name}; reduce axes may only feed combiner "
                "updates")
    if stmt.combiner is None and in_reduce_loop:
        raise IRValidationError(
            f"plain store to {stmt.buffer.name} appears inside a reduce "
            "loop; only combiner updates are legal there")


def _validate_stmt(stmt: I.Stmt, bound: dict[str, E.Var], free: frozenset,
                   in_reduce_loop: bool,
                   alloc_shapes: dict[str, tuple]) -> None:
    if isinstance(stmt, I.For):
        name = stmt.var.name
        if name in bound:
            raise IRValidationError(
                f"loop variable {name} is bound twice along one loop-nest "
                "path")
        if stmt.extent < 0:
            raise IRValidationError(
                f"loop over {name} has negative extent {stmt.extent}")
        inner = dict(bound)
        inner[name] = stmt.var
        _validate_stmt(stmt.body, inner, free,
                       in_reduce_loop or stmt.var.kind == E.IterVar.REDUCE,
                       alloc_shapes)
        return
    if isinstance(stmt, I.Store):
        _check_store(stmt, bound, free, in_reduce_loop, alloc_shapes)
        return
    if isinstance(stmt, I.IfThenElse):
        used: dict[str, E.Var] = {}
        _expr_vars(stmt.cond, used)
        for name in used:
            # The declared free variables (src/dst/eid) are as legal in a
            # guard as the docstring promises they are in a store: the
            # templates substitute them with per-edge gathers at lowering.
            if name not in bound and name not in free:
                raise IRValidationError(
                    f"variable {name} is referenced by a guard but not "
                    "bound by any enclosing loop or declared free")
        _validate_stmt(stmt.then_body, bound, free, in_reduce_loop,
                       alloc_shapes)
        if stmt.else_body is not None:
            _validate_stmt(stmt.else_body, bound, free, in_reduce_loop,
                           alloc_shapes)
        return
    if isinstance(stmt, (I.SeqStmt,)):
        for s in stmt.stmts:
            _validate_stmt(s, bound, free, in_reduce_loop, alloc_shapes)
        return
    if isinstance(stmt, I.Allocate):
        for d, extent in enumerate(stmt.buffer.shape):
            if not isinstance(extent, (int, np.integer)) or extent < 0:
                raise IRValidationError(
                    f"allocation of {stmt.buffer.name} has illegal extent "
                    f"{extent!r} in dim {d}; extents must be non-negative "
                    "integers")
        inner = dict(alloc_shapes)
        inner[stmt.buffer.name] = tuple(stmt.buffer.shape)
        _validate_stmt(stmt.body, bound, free, in_reduce_loop, inner)
        return
    if isinstance(stmt, I.AttrStmt):
        _validate_stmt(stmt.body, bound, free, in_reduce_loop, alloc_shapes)
        return
    if isinstance(stmt, I.Evaluate):
        return
    raise IRValidationError(f"unknown statement type {type(stmt).__name__}")


def validate_ir(stmt: I.Stmt, free_vars=DEFAULT_FREE_VARS) -> None:
    """Structurally validate a lowered loop nest; raise on the first defect.

    ``free_vars`` names the variables a statement may reference without an
    enclosing loop binding them -- by default the template trace variables
    ``src``/``dst``/``eid``.  :func:`repro.tensorir.lower.lower` extends the
    set with the free variables of the compute being lowered.
    """
    _validate_stmt(stmt, {}, frozenset(free_vars), False, {})
