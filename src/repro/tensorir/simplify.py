"""Expression simplification.

A classic tensor-compiler pass: constant folding and algebraic identities
(``x+0``, ``x*1``, ``x*0``, ``x/1``, ``max(x, -inf)``, nested cast removal).
Applied during lowering so that scheduled index arithmetic like
``(i_outer * 1 + i_inner)`` and UDF expressions carrying literal zeros don't
pollute generated code or flop counts.
"""

from __future__ import annotations

from repro.tensorir import expr as E

__all__ = ["simplify", "simplify_stmt"]


def _is_const(node: E.Expr, value: float | None = None) -> bool:
    if isinstance(node, (E.IntImm, E.FloatImm)):
        return value is None or float(node.value) == float(value)
    return False


def _const_value(node: E.Expr) -> float:
    return float(node.value)  # type: ignore[attr-defined]


def _fold(op: str, a: float, b: float, dtype: str) -> E.Expr:
    if op == "+":
        v = a + b
    elif op == "-":
        v = a - b
    elif op == "*":
        v = a * b
    elif op == "/":
        v = a / b
    elif op == "//":
        v = a // b
    elif op == "%":
        v = a % b
    elif op == "max":
        v = max(a, b)
    elif op == "min":
        v = min(a, b)
    else:
        raise ValueError(op)
    if dtype.startswith("int"):
        return E.IntImm(int(v), dtype)
    return E.FloatImm(v, dtype)


def simplify(node: E.Expr) -> E.Expr:
    """Return a simplified (possibly identical) expression tree."""
    if isinstance(node, (E.IntImm, E.FloatImm, E.Var, E.IterVar)):
        return node
    if isinstance(node, E.TensorElem):
        return E.TensorElem(node.tensor, [simplify(i) for i in node.indices])
    if isinstance(node, E.Call):
        return E.Call(node.func, [simplify(a) for a in node.args],
                      dtype=node.dtype)
    if isinstance(node, E.Select):
        cond = simplify(node.cond)
        then = simplify(node.then)
        other = simplify(node.otherwise)
        if _is_const(cond):
            return then if _const_value(cond) else other
        return E.Select(cond, then, other)
    if isinstance(node, E.Cast):
        inner = simplify(node.value)
        if isinstance(inner, E.Cast):
            inner = inner.value
        if inner.dtype == node.dtype:
            return inner
        return E.Cast(inner, node.dtype)
    if isinstance(node, E.Reduce):
        return E.Reduce(node.combiner, simplify(node.source), node.axes)
    if isinstance(node, E.BinOp):
        a = simplify(node.a)
        b = simplify(node.b)
        op = node.op
        if _is_const(a) and _is_const(b):
            if op in ("<", "<=", ">", ">=", "==", "!="):
                av, bv = _const_value(a), _const_value(b)
                result = {"<": av < bv, "<=": av <= bv, ">": av > bv,
                          ">=": av >= bv, "==": av == bv, "!=": av != bv}[op]
                return E.IntImm(int(result), "bool")
            return _fold(op, _const_value(a), _const_value(b), node.dtype)
        # algebraic identities
        if op == "+":
            if _is_const(a, 0):
                return b
            if _is_const(b, 0):
                return a
        elif op == "-":
            if _is_const(b, 0):
                return a
        elif op == "*":
            if _is_const(a, 1):
                return b
            if _is_const(b, 1):
                return a
            if _is_const(a, 0) or _is_const(b, 0):
                return E.const(0, node.dtype) if node.dtype.startswith("int") \
                    else E.FloatImm(0.0, node.dtype)
        elif op == "/":
            if _is_const(b, 1):
                return a
        elif op == "//":
            if _is_const(b, 1):
                return a
        elif op == "max":
            if _is_const(a, float("-inf")):
                return b
            if _is_const(b, float("-inf")):
                return a
        elif op == "min":
            if _is_const(a, float("inf")):
                return b
            if _is_const(b, float("inf")):
                return a
        return E.BinOp(op, a, b, dtype=node.dtype)
    raise TypeError(f"cannot simplify {type(node).__name__}")


def simplify_stmt(stmt):
    """Simplify every expression inside a loop-nest statement tree.

    The statement-level twin of :func:`simplify`, used by the compile
    pipeline's ``simplify`` pass so lowering can emit raw index arithmetic
    and have it normalized in one dedicated place.
    """
    from repro.tensorir import ir as I

    if isinstance(stmt, I.For):
        return I.For(stmt.var, stmt.extent, simplify_stmt(stmt.body),
                     kind=stmt.kind)
    if isinstance(stmt, I.Store):
        return I.Store(stmt.buffer, simplify(stmt.value),
                       [simplify(i) for i in stmt.indices],
                       combiner=stmt.combiner)
    if isinstance(stmt, I.SeqStmt):
        return I.SeqStmt([simplify_stmt(s) for s in stmt.stmts])
    if isinstance(stmt, I.IfThenElse):
        else_body = (simplify_stmt(stmt.else_body)
                     if stmt.else_body is not None else None)
        return I.IfThenElse(simplify(stmt.cond), simplify_stmt(stmt.then_body),
                            else_body)
    if isinstance(stmt, I.Allocate):
        return I.Allocate(stmt.buffer, stmt.scope, simplify_stmt(stmt.body))
    if isinstance(stmt, I.AttrStmt):
        return I.AttrStmt(stmt.key, stmt.value, simplify_stmt(stmt.body))
    if isinstance(stmt, I.Evaluate):
        return stmt
    raise TypeError(f"cannot simplify statement {type(stmt).__name__}")
