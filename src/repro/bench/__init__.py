"""Benchmark harness utilities.

- :mod:`repro.bench.tables` -- paper-style ASCII table rendering with
  paper-vs-reproduced columns and speedup annotations.
- :mod:`repro.bench.paper` -- the numbers reported in the paper's tables and
  figures, transcribed verbatim for side-by-side comparison.
- :mod:`repro.bench.timing` -- wall-clock measurement following the paper's
  protocol ("first do a warm-up run and then take the average time of 10
  runs").
- :mod:`repro.bench.recorder` -- collects (experiment, series, value) rows
  so EXPERIMENTS.md can be regenerated from a bench run.
"""

from repro.bench.tables import Table, fmt_seconds, fmt_speedup
from repro.bench.timing import measure
from repro.bench import paper

__all__ = ["Table", "fmt_seconds", "fmt_speedup", "measure", "paper"]
