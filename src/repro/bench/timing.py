"""Wall-clock measurement following the paper's protocol.

"In all the experiments, we first do a warm-up run and then take the
average time of 10 runs as the measurement." (Sec. V-A)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["measure", "Measurement"]


@dataclass
class Measurement:
    mean_seconds: float
    min_seconds: float
    max_seconds: float
    runs: int

    @property
    def ms(self) -> float:
        return self.mean_seconds * 1e3


def measure(fn: Callable[[], object], runs: int = 10, warmup: int = 1) -> Measurement:
    """Warm up, then average ``runs`` timed executions of ``fn``."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(runs):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return Measurement(
        mean_seconds=sum(times) / len(times),
        min_seconds=min(times),
        max_seconds=max(times),
        runs=runs,
    )
