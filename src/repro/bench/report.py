"""Aggregate benchmark results into a markdown report.

``python -m repro.bench`` reads ``benchmarks/results/*.json`` (written by a
``pytest benchmarks/`` run) and prints a summary of reproduced headline
numbers, so EXPERIMENTS.md can be refreshed from an actual run.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_results", "summarize"]


def load_results(results_dir: str | Path) -> dict[str, dict]:
    """Read every results JSON in the directory, keyed by experiment name."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"{results_dir} not found -- run `pytest benchmarks/ "
            "--benchmark-only` first")
    out = {}
    for path in sorted(results_dir.glob("*.json")):
        out[path.stem] = json.loads(path.read_text())
    return out


def _kernel_speedups(table: dict, baseline: str, ours: str = "FeatGraph"):
    ratios = []
    for ds, systems in table.items():
        if baseline not in systems:
            continue
        for f, t in systems[baseline].items():
            ratios.append(t / systems[ours][f])
    return (min(ratios), max(ratios)) if ratios else (None, None)


def summarize(results: dict[str, dict]) -> str:
    """Render a markdown summary of the headline reproduced numbers."""
    lines = ["# Reproduced headline numbers", ""]

    if "table3a_gcn" in results:
        lo, hi = _kernel_speedups(results["table3a_gcn"], "Ligra")
        lines.append(f"- CPU GCN aggregation vs Ligra: {lo:.1f}x-{hi:.1f}x "
                     "(paper: 1.4x-4.0x)")
        lo, hi = _kernel_speedups(results["table3a_gcn"], "MKL")
        lines.append(f"- CPU GCN aggregation vs MKL: {lo:.1f}x-{hi:.1f}x "
                     "(paper: ~0.9x-4.4x)")
    if "table3b_mlp" in results:
        lo, hi = _kernel_speedups(results["table3b_mlp"], "Ligra")
        lines.append(f"- CPU MLP aggregation vs Ligra: {lo:.1f}x-{hi:.1f}x "
                     "(paper: 4.4x-5.5x)")
    if "table3c_attention" in results:
        lo, hi = _kernel_speedups(results["table3c_attention"], "Ligra")
        lines.append(f"- CPU dot attention vs Ligra: {lo:.1f}x-{hi:.1f}x "
                     "(paper: 4.3x-6.0x)")
    if "table4a_gcn_gpu" in results:
        lo, hi = _kernel_speedups(results["table4a_gcn_gpu"], "Gunrock")
        lines.append(f"- GPU GCN aggregation vs Gunrock: {lo:.0f}x-{hi:.0f}x "
                     "(paper: 24x-206x)")
    if "table4c_attention_gpu" in results:
        lo, hi = _kernel_speedups(results["table4c_attention_gpu"], "Gunrock")
        lines.append(f"- GPU dot attention vs Gunrock: {lo:.1f}x-{hi:.1f}x "
                     "(paper: 1.2x-3.1x)")

    if "table6_end_to_end" in results:
        best_cpu, best_gpu = 0.0, 0.0
        for key, (wo, w) in results["table6_end_to_end"].items():
            if wo is None or w is None:
                continue
            ratio = wo / w
            if "'cpu'" in key:
                best_cpu = max(best_cpu, ratio)
            else:
                best_gpu = max(best_gpu, ratio)
        lines.append(f"- end-to-end best speedup: {best_cpu:.0f}x on CPU, "
                     f"{best_gpu:.1f}x on GPU (paper abstract: 32x / 7x)")
        gat = results["table6_end_to_end"].get("('gpu', 'training', 'GAT')")
        if gat and gat[0] is None:
            lines.append("- GAT GPU training w/o FeatGraph: OOM "
                         "(paper's starred N/A reproduced)")

    if "fig10_scalability" in results:
        fg = results["fig10_scalability"]["FeatGraph"].get("16")
        if fg:
            lines.append(f"- 16-thread scaling, FeatGraph: {fg:.1f}x "
                         "(paper: 12.6x)")
    if "fig12_tree_reduction" in results:
        boosts = [v["fg_no_tree"] / v["fg_tree"]
                  for v in results["fig12_tree_reduction"].values()]
        lines.append(f"- tree-reduction boost: up to {max(boosts):.2f}x "
                     "(paper: up to 2x)")
    if "fig13_hybrid" in results:
        boosts = [v["fg_no_hybrid"] / v["fg_hybrid"]
                  for v in results["fig13_hybrid"].values()]
        lines.append(f"- hybrid-partitioning boost: up to {max(boosts):.2f}x "
                     "(paper: 1.10x-1.20x)")
    if "accuracy_parity" in results:
        accs = results["accuracy_parity"]
        pairs = {}
        for key, acc in accs.items():
            model = key.split("'")[1]
            pairs.setdefault(model, []).append(acc)
        ok = all(abs(v[0] - v[1]) < 0.02 for v in pairs.values()
                 if len(v) == 2)
        lines.append(f"- backend accuracy parity: "
                     f"{'holds' if ok else 'VIOLATED'} "
                     "(paper: identical accuracy)")
    lines.append("")
    lines.append(f"({len(results)} experiment record(s) found)")
    return "\n".join(lines)
