"""CLI: summarize a benchmark run.

Usage::

    pytest benchmarks/ --benchmark-only       # produces benchmarks/results/
    python -m repro.bench [results_dir]       # prints the markdown summary
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.report import load_results, summarize


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    results_dir = Path(argv[0]) if argv else Path("benchmarks/results")
    try:
        results = load_results(results_dir)
    except FileNotFoundError as e:
        print(e, file=sys.stderr)
        return 1
    print(summarize(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
