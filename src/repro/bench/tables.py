"""Paper-style ASCII table rendering."""

from __future__ import annotations

__all__ = ["Table", "fmt_seconds", "fmt_speedup"]


def fmt_seconds(s: float | None, unit: str = "s") -> str:
    if s is None:
        return "N/A"
    if unit == "ms":
        return f"{s * 1e3:.1f}"
    return f"{s:.2f}"


def fmt_speedup(x: float | None) -> str:
    if x is None:
        return "-"
    return f"{x:.2f}x"


class Table:
    """A simple column-aligned table with a title, printed to stdout."""

    def __init__(self, title: str, columns: list[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *cells):
        cells = [str(c) for c in cells]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.columns)} columns")
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self):
        print()
        print(self.render())
        print()
