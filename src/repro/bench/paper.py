"""The paper's reported numbers, transcribed for side-by-side comparison.

All times in seconds unless a dict is suffixed ``_MS``.  Keys follow
``[dataset][system][feature_len]`` for the kernel tables.
"""

from __future__ import annotations

FEATURE_LENGTHS = (32, 64, 128, 256, 512)
DATASETS = ("ogbn-proteins", "reddit", "rand-100K")

# ---------------------------------------------------------------- Table III
# Single-threaded CPU performance, seconds.
TABLE3_GCN = {
    "ogbn-proteins": {
        "Ligra": {32: 1.47, 64: 2.05, 128: 3.10, 256: 6.01, 512: 12.30},
        "MKL": {32: 0.60, 64: 0.96, 128: 2.17, 256: 5.34, 512: 14.71},
        "FeatGraph": {32: 0.50, 64: 0.99, 128: 1.97, 256: 3.94, 512: 8.02},
    },
    "reddit": {
        "Ligra": {32: 4.10, 64: 7.20, 128: 13.10, 256: 20.40, 512: 34.90},
        "MKL": {32: 1.50, 64: 3.01, 128: 7.87, 256: 17.79, 512: 40.06},
        "FeatGraph": {32: 1.02, 64: 2.13, 128: 4.09, 256: 8.16, 512: 16.71},
    },
    "rand-100K": {
        "Ligra": {32: 0.64, 64: 0.86, 128: 1.49, 256: 2.58, 512: 4.91},
        "MKL": {32: 0.43, 64: 0.77, 128: 2.26, 256: 5.45, 512: 15.51},
        "FeatGraph": {32: 0.22, 64: 0.43, 128: 0.87, 256: 1.74, 512: 3.52},
    },
}

TABLE3_MLP = {
    "ogbn-proteins": {
        "Ligra": {32: 12.90, 64: 24.70, 128: 47.70, 256: 94.00, 512: 187.00},
        "FeatGraph": {32: 2.48, 64: 4.84, 128: 9.68, 256: 19.55, 512: 38.70},
    },
    "reddit": {
        "Ligra": {32: 20.70, 64: 37.90, 128: 71.50, 256: 139.00, 512: 273.00},
        "FeatGraph": {32: 4.03, 64: 8.20, 128: 15.33, 256: 30.80, 512: 62.07},
    },
    "rand-100K": {
        "Ligra": {32: 7.81, 64: 14.80, 128: 28.80, 256: 56.90, 512: 113.00},
        "FeatGraph": {32: 1.42, 64: 2.74, 128: 5.48, 256: 10.96, 512: 21.97},
    },
}

TABLE3_ATTENTION = {
    "ogbn-proteins": {
        "Ligra": {32: 9.81, 64: 22.30, 128: 47.50, 256: 97.70, 512: 198.00},
        "FeatGraph": {32: 2.21, 64: 4.39, 128: 8.67, 256: 16.46, 512: 32.97},
    },
    "reddit": {
        "Ligra": {32: 17.20, 64: 37.30, 128: 77.20, 256: 152.00, 512: 297.00},
        "FeatGraph": {32: 3.71, 64: 7.34, 128: 14.11, 256: 27.13, 512: 54.51},
    },
    "rand-100K": {
        "Ligra": {32: 5.57, 64: 12.90, 128: 28.20, 256: 58.30, 512: 119.00},
        "FeatGraph": {32: 1.28, 64: 2.51, 128: 5.37, 256: 10.76, 512: 21.47},
    },
}

# ----------------------------------------------------------------- Table IV
# GPU performance, milliseconds.
TABLE4_GCN_MS = {
    "ogbn-proteins": {
        "Gunrock": {32: 114.2, 64: 276.7, 128: 1322.3, 256: 4640.3, 512: 12423.9},
        "cuSPARSE": {32: 4.1, 64: 8.1, 128: 16.2, 256: 32.1, 512: 64.2},
        "FeatGraph": {32: 4.6, 64: 7.8, 128: 15.4, 256: 30.8, 512: 61.9},
    },
    "reddit": {
        "Gunrock": {32: 616.9, 64: 2026.4, 128: 5141.2, 256: 11715.3, 512: 24749.8},
        "cuSPARSE": {32: 12.2, 64: 25.1, 128: 51.6, 256: 104.7, 512: 209.6},
        "FeatGraph": {32: 14.3, 64: 28.6, 128: 57.8, 256: 116.9, 512: 232.0},
    },
    "rand-100K": {
        "Gunrock": {32: 72.7, 64: 175.5, 128: 1006.2, 256: 3303.7, 512: 8236.5},
        "cuSPARSE": {32: 3.6, 64: 5.9, 128: 10.6, 256: 21.9, 512: 44.4},
        "FeatGraph": {32: 2.8, 64: 4.9, 128: 10.2, 256: 20.3, 512: 39.9},
    },
}

TABLE4_MLP_MS = {
    "ogbn-proteins": {
        "Gunrock": {32: 591.6, 64: 833.4, 128: 2067.7, 256: 5603.5, 512: 13687.4},
        "FeatGraph": {32: 26.9, 64: 46.7, 128: 87.4, 256: 168.9, 512: 332.9},
    },
    "reddit": {
        "Gunrock": {32: 1285.6, 64: 2697.5, 128: 5886.4, 256: 12285.0, 512: 25442.3},
        "FeatGraph": {32: 33.2, 64: 76.7, 128: 142.9, 256: 277.1, 512: 547.9},
    },
    "rand-100K": {
        "Gunrock": {32: 447.2, 64: 648.1, 128: 1556.1, 256: 3848.5, 512: 8624.6},
        "FeatGraph": {32: 8.9, 64: 14.9, 128: 26.0, 256: 46.6, 512: 89.6},
    },
}

TABLE4_ATTENTION_MS = {
    "ogbn-proteins": {
        "Gunrock": {32: 30.9, 64: 58.8, 128: 120.2, 256: 251.3, 512: 645.1},
        "FeatGraph": {32: 24.4, 64: 37.9, 128: 69.3, 256: 143.3, 512: 333.7},
    },
    "reddit": {
        "Gunrock": {32: 44.8, 64: 99.3, 128: 278.5, 256: 648.2, 512: 1388.7},
        "FeatGraph": {32: 35.9, 64: 56.6, 128: 103.7, 256: 212.0, 512: 483.2},
    },
    "rand-100K": {
        "Gunrock": {32: 19.3, 64: 37.3, 128: 75.5, 256: 174.3, 512: 441.6},
        "FeatGraph": {32: 14.9, 64: 23.2, 128: 42.3, 256: 87.8, 512: 201.5},
    },
}

# ------------------------------------------------------------------- Fig 10
# Speedup over single-threaded execution, GCN aggregation, reddit, f=512.
FIG10_SCALABILITY = {
    "FeatGraph": {1: 1.0, 2: 1.9, 4: 3.7, 8: 7.0, 16: 12.6},
    "Ligra": {1: 1.0, 2: 1.8, 4: 3.3, 8: 5.9, 16: 9.5},
    "MKL": {1: 1.0, 2: 1.8, 4: 3.4, 8: 6.1, 16: 9.8},
}

# ------------------------------------------------------------------- Fig 11
# Speedup over unoptimized baseline, CPU GCN aggregation on reddit, f=512.
FIG11_F512_SPEEDUPS = {
    "feature tiling": 1.2,
    "graph partitioning": 1.7,
    "feature tiling + graph partitioning": 2.2,
}

# ------------------------------------------------------------------- Fig 12
# Tree reduction boosts GPU dot-product attention "by up to 2x" (rand-100K).
FIG12_TREE_REDUCTION_MAX_BOOST = 2.0

# ------------------------------------------------------------------- Fig 13
# Hybrid partitioning: "10%-20% performance boost" on rand-100K GCN.
FIG13_HYBRID_BOOST_RANGE = (1.10, 1.20)

# ------------------------------------------------------------------- Fig 14
# Time (s) by (#graph partitions, #feature partitions), reddit, f=128.
FIG14_GRID = {
    (1, 1): 12.5, (1, 2): 10.0, (1, 4): 7.6, (1, 8): 16.1,
    (4, 1): 7.9, (4, 2): 5.5, (4, 4): 4.5, (4, 8): 13.9,
    (16, 1): 5.6, (16, 2): 4.6, (16, 4): 4.1, (16, 8): 12.4,
    (64, 1): 6.0, (64, 2): 5.1, (64, 4): 4.5, (64, 8): 12.6,
}
FIG14_BEST = (16, 4)

# ------------------------------------------------------------------- Fig 15
# Time (ms) vs #CUDA blocks, GPU GCN aggregation, reddit, f=128 (approx.,
# read off the figure).
FIG15_BLOCKS_MS = {256: 100.0, 1024: 80.0, 4096: 67.0, 16384: 62.0,
                   65536: 60.0, 262144: 60.0}

# ------------------------------------------------------------------ Table V
# Sensitivity to graph sparsity: uniform 100K-vertex graph, f=128, CPU.
TABLE5_SPARSITY = {
    # sparsity: (MKL s, FeatGraph s, speedup)
    0.9995: (0.34, 0.31, 1.10),
    0.995: (3.58, 1.95, 1.84),
    0.95: (37.22, 12.78, 2.91),
}

# ----------------------------------------------------------------- Table VI
# End-to-end, reddit, seconds per epoch: (DGL w/o FeatGraph, DGL w/).
TABLE6 = {
    ("cpu", "training", "GCN"): (2447.1, 114.5),
    ("cpu", "training", "GraphSage"): (1269.6, 57.8),
    ("cpu", "training", "GAT"): (5763.9, 179.3),
    ("cpu", "inference", "GCN"): (1176.9, 55.3),
    ("cpu", "inference", "GraphSage"): (602.4, 29.8),
    ("cpu", "inference", "GAT"): (1580.9, 71.5),
    ("gpu", "training", "GCN"): (6.3, 2.2),
    ("gpu", "training", "GraphSage"): (3.1, 1.5),
    ("gpu", "training", "GAT"): (None, 1.64),  # w/o FeatGraph: OOM
    ("gpu", "inference", "GCN"): (3.1, 1.5),
    ("gpu", "inference", "GraphSage"): (1.5, 1.1),
    ("gpu", "inference", "GAT"): (8.1, 1.1),
}

# Sec. V-E accuracy: both backends match (GAT diverges with both).
ACCURACY = {"GCN": 0.937, "GraphSage": 0.931}
