"""End-to-end GNN training with FeatGraph as the framework backend.

Reproduces the Sec. V-E experiment at laptop scale: train GCN, GraphSage,
and GAT for vertex classification on a labeled community graph, once with
the DGL-default (Minigun-like, message-materializing) backend and once with
the fused FeatGraph backend.  Accuracy must match -- FeatGraph is purely a
performance backend -- while the fused backend materializes zero per-edge
tensors.

Run:  python examples/train_gnn.py
"""

import numpy as np

from repro.graph.datasets import planted_partition
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GAT, GCN, GraphSage
from repro.minidgl.train import train_model

dataset = planted_partition(n=900, num_classes=5, feature_dim=32,
                            avg_degree=20, seed=7)
print(f"dataset: {dataset.name}, |V|={dataset.num_vertices}, "
      f"|E|={dataset.num_edges}, "
      f"train/val/test = {dataset.train_mask.sum()}/"
      f"{dataset.val_mask.sum()}/{dataset.test_mask.sum()}")

MODELS = {
    "GCN": lambda: GCN(32, 5, hidden=32, dropout=0.0, seed=3),
    "GraphSage": lambda: GraphSage(32, 5, hidden=32, dropout=0.0, seed=3),
    "GAT": lambda: GAT(32, 5, hidden=32, num_heads=4, dropout=0.0, seed=3),
}

print(f"\n{'model':<10} {'backend':<10} {'test acc':>9} {'epoch (ms)':>11} "
      f"{'materialized':>14}")
for name, make in MODELS.items():
    for backend_name in ("minigun", "featgraph"):
        backend = get_backend(backend_name)
        model = make()
        res = train_model(model, dataset, backend, epochs=30, lr=0.02)
        print(f"{name:<10} {backend_name:<10} {res.test_accuracy:9.3f} "
              f"{res.mean_epoch_seconds * 1e3:11.1f} "
              f"{getattr(backend, 'materialized_bytes', 0):>13,}B")

# --- what the paper's Table VI predicts at reddit scale -------------------------
from repro.graph.datasets import paper_stats
from repro.minidgl import perfmodel

reddit = paper_stats("reddit")
print("\nmodeled per-epoch training time at reddit scale "
      "(DGL w/o -> w/ FeatGraph):")
for model in MODELS:
    for platform in ("cpu", "gpu"):
        try:
            wo = perfmodel.epoch_cost(model, reddit, 602, 41,
                                      backend="minigun", platform=platform)
            wo_s = f"{wo:8.1f} s"
            speed = ""
        except perfmodel.OOM as e:
            wo, wo_s, speed = None, "     OOM", f"  ({e})"
        w = perfmodel.epoch_cost(model, reddit, 602, 41,
                                 backend="featgraph", platform=platform)
        if wo:
            speed = f"  ({wo / w:.1f}x speedup)"
        print(f"  {model:<10} {platform}: {wo_s} -> {w:7.2f} s{speed}")
