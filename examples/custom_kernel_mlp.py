"""Writing a new GNN kernel from scratch: MLP aggregation.

The paper's motivating workload (Fig. 1): each edge pushes its endpoint
features through a small MLP -- ``relu((x_u + x_v) @ W)`` -- and the
destination takes the element-wise max.  Traditional graph frameworks treat
that per-edge computation as a black box; FeatGraph lets you express it as a
tensor-expression UDF with a multi-level FDS (Figs. 3b, 8, 9), and fuses it
into the SpMM template.

This example writes the kernel by hand, checks it against the Ligra
baseline, and compares modeled times at paper scale.

Run:  python examples/custom_kernel_mlp.py
"""

import numpy as np

import repro.core as featgraph
from repro import tensorir as tvm
from repro.baselines import LigraBackend
from repro.graph import from_edges
from repro.graph.datasets import paper_stats

n, m = 1_500, 30_000
d1, d2 = 8, 32
rng = np.random.default_rng(1)
src = rng.integers(0, n, m)
dst = rng.integers(0, n, m)
adj = from_edges(n, n, src, dst)
A = featgraph.spmat(adj)

# --- the UDF (paper Fig. 3b) --------------------------------------------------
XV = tvm.placeholder((n, d1), name="XV")
W = tvm.placeholder((d1, d2), name="W")


def msgfunc(src_v, dst_v, eid):
    k = tvm.reduce_axis((0, d1), name="k")
    return tvm.compute(
        (d2,),
        lambda i: tvm.maximum(
            tvm.sum_reduce((XV[src_v, k] + XV[dst_v, k]) * W[k, i], axis=k),
            0.0,
        ),
    )


# --- multi-level FDS (paper Fig. 8): tile both matmul dimensions --------------
def cpu_schedule(out):
    s = tvm.create_schedule(out)
    s[out].split(out.op.axis[0], factor=8)
    s[out].split(out.op.reduce_axis[0], factor=8)
    return s


MLP = featgraph.spmm(A, msgfunc, "max", target="cpu", fds=cpu_schedule)
print(f"compiled: {MLP}")
print(f"UDF flop analysis: {MLP.udf_flops:.0f} flops/edge, "
      f"reads dst features: {MLP.reads_dst}")

# --- execute and check against the Ligra baseline -----------------------------
x = rng.standard_normal((n, d1)).astype(np.float32)
w = rng.standard_normal((d1, d2)).astype(np.float32)
H = MLP.run({"XV": x, "W": w})
H_ligra = LigraBackend().mlp_aggregation(adj, x, w)
assert np.allclose(H, H_ligra, atol=1e-3)
print("FeatGraph and Ligra agree numerically")

# --- paper-scale comparison (Table III(b)) -------------------------------------
proteins = paper_stats("ogbn-proteins")
t_fg = MLP.cost(stats=proteins).seconds
t_ligra = LigraBackend().cost("mlp_aggregation", proteins, d2).seconds
print(f"\nmodeled on ogbn-proteins at d2={d2}:")
print(f"  Ligra:     {t_ligra:8.2f} s   (paper: 12.90 s at f=32)")
print(f"  FeatGraph: {t_fg:8.2f} s   (paper:  2.48 s at f=32)")
print(f"  speedup:   {t_ligra / t_fg:.1f}x      (paper band: 4.4x-5.5x)")

# --- the same kernel on GPU with the Fig. 9 FDS --------------------------------
def gpu_schedule(out):
    s = tvm.create_schedule(out)
    s[out].bind(out.op.axis[0], "block.x")
    s[out].tree_reduce(out.op.reduce_axis[0], "thread.x")
    return s


MLP_gpu = featgraph.spmm(A, msgfunc, "max", target="gpu", fds=gpu_schedule)
assert np.allclose(MLP_gpu.run({"XV": x, "W": w}), H, atol=1e-3)
print(f"\nGPU variant matches; modeled V100 time at proteins scale: "
      f"{MLP_gpu.cost(stats=proteins).seconds * 1e3:.1f} ms "
      f"(paper Table IV(b): 26.9-333 ms)")
