"""Multi-GPU aggregation with NeuGraph-style chain streaming.

The paper's closing future-work item: "integrate FeatGraph into large-scale
GNN training systems such as NeuGraph to accelerate multi-GPU training."
This example shards GCN aggregation across simulated V100s with the 2D
partitioning + chain-streaming schedule, verifies the sharded numerics, and
compares the modeled scaling of the chain schedule against a naive
host-broadcast schedule.

Run:  python examples/multigpu_scaling.py
"""

import numpy as np

from repro.graph.datasets import paper_stats, reddit_like
from repro.minidgl.multigpu import LinkSpec, MultiGPUSpMM

ds = reddit_like(scale=1 / 128, seed=0)
reddit = paper_stats("reddit")
f = 512
print(f"graph: scaled reddit |V|={ds.num_vertices}, |E|={ds.num_edges}; "
      f"modeling at paper scale (|E|=114.8M), f={f}")

# --- numerics: sharded == single-device ----------------------------------------
x = np.random.default_rng(1).random((ds.num_vertices, 64), dtype=np.float32)
mg = MultiGPUSpMM(ds.adj, num_gpus=4, feature_len=64)
out = mg.run(x)
ref = np.zeros_like(out)
np.add.at(ref, ds.adj.row_of_edge(), x[ds.adj.indices])
assert np.allclose(out, ref, atol=1e-3)
print(f"sharded execution across {mg.num_gpus} devices matches "
      f"single-device output ({mg.num_dst_chunks}x{mg.num_src_chunks} blocks)")

# --- modeled scaling -------------------------------------------------------------
print(f"\n{'#GPUs':>6} {'chain streaming':>16} {'host broadcast':>15}")
for gpus in (1, 2, 4, 8):
    mgk = MultiGPUSpMM(ds.adj, num_gpus=gpus, feature_len=f)
    chain = mgk.speedup_over_single(reddit, "chain")
    naive = mgk.speedup_over_single(reddit, "host-to-all")
    print(f"{gpus:>6} {chain:>15.2f}x {naive:>14.2f}x")

print("\nthe chain schedule crosses PCIe once per chunk and pipelines "
      "GPU-to-GPU hops against compute; the broadcast schedule saturates "
      "the shared host link -- NeuGraph's core observation.")

# --- interconnect sensitivity ----------------------------------------------------
print(f"\n4-GPU chain time by interconnect (reddit, f={f}):")
for name, links in (("PCIe-only (12/12 GB/s)", LinkSpec(12e9, 12e9)),
                    ("NVLink chain (12/48 GB/s)", LinkSpec(12e9, 48e9))):
    mgk = MultiGPUSpMM(ds.adj, num_gpus=4, feature_len=f, links=links)
    print(f"  {name:<28} {mgk.cost(reddit, 'chain').seconds * 1e3:8.1f} ms")
