"""Edge-wise computations with the SDDMM template: attention kernels.

Covers the paper's Fig. 4: dot-product attention (one score per edge) and
multi-head attention (Fig. 4b), including the GPU tree-reduction FDS and the
CPU Hilbert-curve traversal, plus a complete GAT-style attention pipeline
(scores -> edge softmax -> weighted aggregation) built only from FeatGraph
kernels.

Run:  python examples/attention_kernels.py
"""

import numpy as np

import repro.core as featgraph
from repro import tensorir as tvm
from repro.graph import from_edges, segment_softmax
from repro.graph.datasets import paper_stats

n, m, d = 1_000, 20_000, 64
heads, head_dim = 4, 16
rng = np.random.default_rng(2)
src = rng.integers(0, n, m)
dst = rng.integers(0, n, m)
adj = from_edges(n, n, src, dst)
A = featgraph.spmat(adj)

# --- dot-product attention (paper Fig. 4a) -------------------------------------
XV = tvm.placeholder((n, d), name="XV")


def edgefunc(src_v, dst_v, eid):
    k = tvm.reduce_axis((0, d), name="k")
    return tvm.compute((1,), lambda i: tvm.sum_reduce(XV[src_v, k] * XV[dst_v, k],
                                                      axis=k))


def gpu_schedule(out):
    s = tvm.create_schedule(out)
    s[out].tree_reduce(out.op.reduce_axis[0], "thread.x")  # Fig. 4a line 15
    return s


Attention = featgraph.sddmm(A, edgefunc, target="gpu", fds=gpu_schedule)
print(f"compiled: {Attention}")

x = rng.standard_normal((n, d)).astype(np.float32)
scores = Attention.run({"XV": x})[:, 0]
assert np.allclose(scores, (x[src] * x[dst]).sum(1), atol=1e-3)
print(f"scores: shape={scores.shape}, first 3 = {np.round(scores[:3], 3)}")

rand100k = paper_stats("rand-100K")
with_tree = Attention.cost(stats=rand100k).seconds * 1e3
no_tree = featgraph.sddmm(A, edgefunc, target="gpu").cost(stats=rand100k)
print(f"modeled V100 @ rand-100K, f={d}: {with_tree:.1f} ms with tree "
      f"reduction vs {no_tree.seconds * 1e3:.1f} ms without "
      f"(paper Fig. 12: up to 2x)")

# --- multi-head attention (paper Fig. 4b) ----------------------------------------
XH = tvm.placeholder((n, heads, head_dim), name="XH")


def mh_edgefunc(src_v, dst_v, eid):
    k = tvm.reduce_axis((0, head_dim), name="k")
    return tvm.compute(
        (heads,), lambda i: tvm.sum_reduce(XH[src_v, i, k] * XH[dst_v, i, k],
                                           axis=k))


MultiHead = featgraph.sddmm(A, mh_edgefunc, target="cpu")  # Hilbert traversal on
xh = rng.standard_normal((n, heads, head_dim)).astype(np.float32)
mh_scores = MultiHead.run({"XH": xh})
assert np.allclose(mh_scores, np.einsum("ehk,ehk->eh", xh[src], xh[dst]),
                   atol=1e-3)
print(f"\nmulti-head scores: shape={mh_scores.shape} "
      f"(Hilbert traversal: {MultiHead.hilbert})")

# --- a full attention pipeline from FeatGraph kernels -----------------------------
# 1. scores per edge (SDDMM), 2. softmax over incoming edges, 3. weighted
# aggregation (generalized SpMM with a u_mul_e message function).
# softmax needs CSR edge order; reorder scores by CSR position:
csr_scores = scores[adj.edge_ids]
alpha_csr = segment_softmax(csr_scores, adj.indptr)
alpha = np.empty_like(alpha_csr)
alpha[adj.edge_ids] = alpha_csr  # back to original edge ids

EW = tvm.placeholder((m,), name="EW")


def weighted_msg(src_v, dst_v, eid):
    return tvm.compute((d,), lambda i: XV[src_v, i] * EW[eid])


Aggregate = featgraph.spmm(A, weighted_msg, "sum", target="cpu")
H = Aggregate.run({"XV": x, "EW": alpha})
print(f"attention-aggregated features: {H.shape}")

# reference
ref = np.zeros((n, d), np.float32)
np.add.at(ref, dst, x[src] * alpha[:, None])
assert np.allclose(H, ref, atol=1e-3)
print("pipeline matches the dense reference")
