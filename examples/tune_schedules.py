"""Schedule tuning: the paper's Sec. IV-A grid-search workflow.

"FeatGraph combines scheduling parameters from the sparse templates (e.g.,
number of graph partitions ...) and those from the FDS (e.g., feature
dimension tiling factors) to create the design space. In this work we use
naive grid search to find the optimal parameters."

This example tunes the (graph partitions x feature partitions) space for
GCN aggregation on reddit at several feature lengths and prints the Fig. 14
landscape, demonstrating the paper's observation that the optimal feature
partitioning tracks the feature length while the graph partitioning stays
constant.

Run:  python examples/tune_schedules.py
"""

from repro.core.tuner import GridTuner
from repro.graph.datasets import paper_stats
from repro.hwsim import cpu
from repro.hwsim.spec import XEON_8124M

GRAPH_PARTS = (1, 4, 16, 64)
FEATURE_PARTS = (1, 2, 4, 8, 16, 32)

reddit = paper_stats("reddit")


def tune(feature_len: int):
    def evaluate(cfg):
        return cpu.spmm_time(
            XEON_8124M, reddit, feature_len, frame=cpu.FEATGRAPH_CPU,
            num_graph_partitions=cfg["graph"],
            num_feature_partitions=cfg["feature"],
        )

    return GridTuner({"graph": GRAPH_PARTS, "feature": FEATURE_PARTS},
                     evaluate).tune()


# --- the Fig. 14 heatmap at f=128 --------------------------------------------
res = tune(128)
land = res.landscape("graph", "feature")
print("time (s) by (#graph partitions x #feature partitions), "
      "reddit, f=128 -- paper Fig. 14\n")
header = "graph\\feat " + "".join(f"{nf:>8}" for nf in FEATURE_PARTS)
print(header)
for g in GRAPH_PARTS:
    row = "".join(f"{land[(g, nf)]:8.2f}" for nf in FEATURE_PARTS)
    print(f"{g:>10} {row}")
print(f"\nbest: {res.best_config} at {res.best_cost.seconds:.2f} s "
      f"(paper optimum: 16 graph x 4 feature partitions)")

# --- transferable tuning across feature lengths --------------------------------
print("\noptimal configuration per feature length:")
print(f"{'f':>6} {'graph parts':>12} {'feature parts':>14} {'time (s)':>10}")
for f in (32, 64, 128, 256, 512):
    r = tune(f)
    print(f"{f:>6} {r.best_config['graph']:>12} "
          f"{r.best_config['feature']:>14} {r.best_cost.seconds:>10.2f}")
print("\nas the paper observes: the optimal number of feature partitions "
      "grows with f, the graph partitioning stays constant -- so factors "
      "tuned on one feature length transfer (Sec. V-E: 'the partitioning "
      "factors tuned on GCN are directly applied to GraphSage and GAT').")
