"""Mini-batch GraphSage training with neighbor sampling.

GraphSage's [Hamilton et al.] training mode: rather than full-graph message
passing, each step samples a fixed-fanout neighborhood block around a batch
of seed vertices.  The sampled blocks are ordinary pull-layout adjacencies,
so FeatGraph kernels run on them unchanged -- sampling composes with the
backend, it doesn't replace it.

Run:  python examples/minibatch_sampling.py
"""

import numpy as np

from repro.graph.datasets import planted_partition
from repro.graph.segment import segment_reduce
from repro.minidgl.autograd import Tensor
from repro.minidgl.nn import Linear
from repro.minidgl.optim import Adam
from repro.minidgl.sampling import build_blocks, minibatches, sample_neighbors

ds = planted_partition(n=1_000, num_classes=5, feature_dim=24,
                       avg_degree=18, seed=21)
rng = np.random.default_rng(0)
print(f"dataset: |V|={ds.num_vertices}, |E|={ds.num_edges}, "
      f"{ds.train_mask.sum()} train vertices")

# --- a 1-layer sampled SAGE model --------------------------------------------
w_self = Linear(24, 5, rng=rng)
w_neigh = Linear(24, 5, bias=False, rng=rng)
opt = Adam(w_self.parameters() + w_neigh.parameters(), lr=0.05)
train_ids = np.nonzero(ds.train_mask)[0]


def forward(block):
    local_x = block.gather_src_features(ds.features)
    mean = segment_reduce(local_x[block.adj.indices], block.adj.indptr, "mean")
    return w_self(Tensor(local_x[: block.num_dst])) + w_neigh(Tensor(mean))


for epoch in range(20):
    losses = []
    for batch in minibatches(train_ids, batch_size=128, rng=rng):
        block = sample_neighbors(ds.adj, batch, fanout=10, rng=rng)
        logits = forward(block)
        labels = ds.labels[block.dst_ids]
        logp = logits.log_softmax(axis=-1)
        picked = logp * Tensor(np.eye(5, dtype=np.float32)[labels])
        loss = -(picked.sum() * (1.0 / block.num_dst))
        opt.zero_grad()
        loss.backward()
        opt.step()
        losses.append(float(loss.data))
    if epoch % 5 == 0:
        print(f"epoch {epoch:2d}: loss={np.mean(losses):.4f}")

# --- evaluation with full neighborhoods ---------------------------------------
test_ids = np.nonzero(ds.test_mask)[0]
block = sample_neighbors(ds.adj, test_ids, fanout=10_000, rng=rng)
logits = forward(block).numpy()
acc = (logits.argmax(1) == ds.labels[test_ids]).mean()
print(f"\ntest accuracy (sampled training, full-neighborhood eval): {acc:.3f}")

# --- multi-layer blocks --------------------------------------------------------
blocks = build_blocks(ds.adj, test_ids[:64], fanouts=[10, 10], rng=rng)
print(f"2-layer sampling for 64 seeds: frontier sizes "
      f"{[b.num_src for b in blocks]} -> {blocks[-1].num_dst} outputs")
