"""Heterogeneous graphs: R-GCN entity classification.

Two views of the same relational workload:

1. the **kernel** view -- `kernels.rgcn_aggregation` puts the per-relation
   weight lookup *inside* the message function (`XV[src] @ W[rel[eid]]`),
   one fused generalized SpMM over the typed multigraph;
2. the **framework** view -- `minidgl.hetero.RGCN` trains a 2-layer R-GCN
   where classes are encoded purely in the relation structure, so the model
   must treat relations differently to learn at all.

Run:  python examples/heterograph_rgcn.py
"""

import numpy as np

from repro.core import kernels
from repro.graph import from_edges
from repro.minidgl.autograd import Tensor, no_grad
from repro.minidgl.backends import get_backend
from repro.minidgl.hetero import HeteroGraph, RGCN
from repro.minidgl.optim import Adam

rng = np.random.default_rng(0)

# --- kernel view -----------------------------------------------------------------
n, m, R, d1, d2 = 1_000, 12_000, 4, 16, 32
src = rng.integers(0, n, m)
dst = rng.integers(0, n, m)
rel = rng.integers(0, R, m)
adj = from_edges(n, n, src, dst)
k = kernels.rgcn_aggregation(adj, n, m, R, d1, d2)
print(f"R-GCN kernel: {k}")
print(f"  per-edge UDF work: {k.udf_flops:.0f} flops "
      f"(a {d1}x{d2} relation-indexed matmul)")
x = rng.standard_normal((n, d1)).astype(np.float32)
w = rng.standard_normal((R, d1, d2)).astype(np.float32)
H = k.run({"XV": x, "W": w, "REL": rel})
ref = np.zeros((n, d2), np.float32)
np.add.at(ref, dst, np.einsum("ek,eki->ei", x[src], w[rel]))
assert np.allclose(H, ref, atol=1e-3)
print(f"  fused relational aggregation matches reference: {H.shape}")

# --- framework view ----------------------------------------------------------------
print("\ntraining a 2-layer R-GCN where only the relations carry signal...")
n2, classes = 400, 3
labels = rng.integers(0, classes, n2)
by_class = [np.nonzero(labels == c)[0] for c in range(classes)]
same_src = rng.integers(0, n2, n2 * 8)
same_dst = np.array([rng.choice(by_class[labels[s]]) for s in same_src])
diff_src = rng.integers(0, n2, n2 * 4)
diff_dst = np.array([rng.choice(by_class[(labels[s] + 1) % classes])
                     for s in diff_src])
hg = HeteroGraph(n2, {"same": (same_src, same_dst),
                      "diff": (diff_src, diff_dst)})
print(f"  {hg}")

feats = rng.normal(0, 1, (n2, 16)).astype(np.float32)  # pure noise features
train = np.arange(n2) % 4 != 0
model = RGCN(16, classes, hg.relations, hidden=16, seed=1)
backend = get_backend("featgraph")
opt = Adam(model.parameters(), lr=0.02)
x2 = Tensor(feats)
onehot = np.eye(classes, dtype=np.float32)[labels]
for epoch in range(60):
    opt.zero_grad()
    logits = model(hg, x2, backend)
    logp = logits.gather_rows(np.nonzero(train)[0]).log_softmax(-1)
    loss = -(logp * Tensor(onehot[train])).sum() * (1.0 / train.sum())
    loss.backward()
    opt.step()
    if epoch % 20 == 0:
        print(f"  epoch {epoch:2d}: loss={float(loss.data):.4f}")

model.eval()
with no_grad():
    pred = model(hg, x2, backend).data.argmax(1)
acc = (pred[~train] == labels[~train]).mean()
print(f"  test accuracy (features are noise; signal lives in relations): "
      f"{acc:.3f}")
