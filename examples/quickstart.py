"""Quickstart: the FeatGraph programming interface end to end.

Mirrors the paper's Fig. 3a listing: wrap an adjacency, describe the
per-edge feature computation as a UDF in the tensor-expression language,
attach a feature dimension schedule (FDS), trigger the SpMM template, run
it, and ask the machine model what the kernel would cost on the paper's
hardware.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.core as featgraph
from repro import tensorir as tvm
from repro.graph import from_edges

# --- build a random graph ---------------------------------------------------
n, m, d = 2_000, 40_000, 64
rng = np.random.default_rng(0)
src = rng.integers(0, n, m)
dst = rng.integers(0, n, m)
A = featgraph.spmat(from_edges(n, n, src, dst))
print(f"graph: {A}")

# --- the UDF: use the source vertex feature as the message (GCN) ------------
XV = tvm.placeholder((n, d), name="XV")


def msgfunc(src_v, dst_v, eid):
    return tvm.compute((d,), lambda i: XV[src_v, i])


# --- the FDS: tile the feature dimension for cache optimization (CPU) -------
def cpu_schedule(out):
    s = tvm.create_schedule(out)
    s[out].split(out.op.axis[0], factor=8)  # the tiling factor is tunable
    return s


# --- the FDS for GPU: bind the feature dimension to CUDA threads ------------
def gpu_schedule(out):
    s = tvm.create_schedule(out)
    s[out].bind(out.op.axis[0], "thread.x")
    return s


# --- trigger the SpMM template -----------------------------------------------
GCN_cpu = featgraph.spmm(A, msgfunc, "sum", target="cpu", fds=cpu_schedule)
GCN_gpu = featgraph.spmm(A, msgfunc, "sum", target="gpu", fds=gpu_schedule)
print(f"compiled: {GCN_cpu}")
print(f"compiled: {GCN_gpu}")

# --- execute ------------------------------------------------------------------
features = rng.random((n, d), dtype=np.float32)
H = GCN_cpu.run({"XV": features})
H_gpu = GCN_gpu.run({"XV": features})
assert np.allclose(H, H_gpu, atol=1e-4)
print(f"output: shape={H.shape}, H[0,:4]={np.round(H[0, :4], 3)}")

# --- sanity check vs a dense reference ----------------------------------------
ref = np.zeros_like(H)
np.add.at(ref, dst, features[src])
assert np.allclose(H, ref, atol=1e-3)
print("matches the scatter-add reference")

# --- what would this cost on the paper's machines? -----------------------------
print(f"\nmodeled on Xeon 8124M (this graph):  {GCN_cpu.cost()}")
print(f"modeled on Tesla V100 (this graph):  {GCN_gpu.cost()}")

# at paper scale (reddit: 233K vertices, 114.8M edges)
from repro.graph.datasets import paper_stats

reddit = paper_stats("reddit")
print(f"\nmodeled on Xeon 8124M (reddit, f={d}): "
      f"{GCN_cpu.cost(stats=reddit).seconds:.2f} s "
      f"(paper Table III: 2.13 s at f=64)")
print(f"modeled on Tesla V100 (reddit, f={d}): "
      f"{GCN_gpu.cost(stats=reddit).seconds * 1e3:.1f} ms "
      f"(paper Table IV: 28.6 ms at f=64)")
