"""The baseline graph frameworks as real systems.

The reproduction doesn't stub its baselines: Ligra (vertex-centric,
push/pull direction switching) and Gunrock (frontier advance with
degree-bucketed load balancing) are runnable frameworks.  This example uses
them the way their papers intend -- BFS and PageRank -- and then shows why
the paper says they mishandle GNN workloads: the per-edge feature
computation is opaque to their schedulers.

Run:  python examples/graph_frameworks.py
"""

import numpy as np

from repro.baselines.gunrock import GunrockBackend, bfs as gunrock_bfs
from repro.baselines.ligra import (
    Frontier,
    LigraBackend,
    LigraGraph,
    bfs as ligra_bfs,
    edge_map,
    pagerank,
)
from repro.core.backend import FeatGraphBackend
from repro.graph import from_edges
from repro.graph.datasets import paper_stats

n, m = 3_000, 30_000
rng = np.random.default_rng(5)
adj = from_edges(n, n, rng.integers(0, n, m), rng.integers(0, n, m))

# --- classic workloads: where these frameworks shine ---------------------------
g = LigraGraph(adj)
dist = ligra_bfs(g, source=0)
reached = (dist >= 0).sum()
print(f"Ligra BFS from vertex 0: reached {reached}/{n} vertices, "
      f"eccentricity {dist.max()}")

dist2 = gunrock_bfs(adj.transpose(), 0)
assert np.array_equal(dist, dist2)
print("Gunrock BFS agrees with Ligra")

pr = pagerank(g, iters=15)
top = np.argsort(pr)[::-1][:5]
print(f"Ligra PageRank top-5 vertices: {top.tolist()}")

# --- a custom vertex program on the Ligra model ---------------------------------
# label propagation: each round, take the max label among in-neighbors
labels = np.arange(n)
for _ in range(3):
    def update(src, dst, eid):
        np.maximum.at(labels, dst, labels[src])
        return np.ones(len(dst), bool)
    edge_map(g, Frontier.all(n), update)
print(f"label propagation converged toward {labels.max()} "
      f"({(labels == labels.max()).sum()} vertices)")

# --- GNN workloads: where they fall over -----------------------------------------
print("\nGNN kernels (modeled at paper scale, reddit, f=256):")
reddit = paper_stats("reddit")
systems = {
    "Ligra (CPU)": (LigraBackend(), "cpu"),
    "FeatGraph (CPU)": (FeatGraphBackend("cpu"), "cpu"),
    "Gunrock (GPU)": (GunrockBackend(), "gpu"),
    "FeatGraph (GPU)": (FeatGraphBackend("gpu"), "gpu"),
}
print(f"{'system':<18} {'GCN agg':>10} {'MLP agg':>10} {'attention':>10}")
for name, (backend, _) in systems.items():
    row = []
    for kernel in ("gcn_aggregation", "mlp_aggregation", "dot_attention"):
        t = backend.cost(kernel, reddit, 256).seconds
        row.append(f"{t:9.3f}s")
    print(f"{name:<18} {row[0]:>10} {row[1]:>10} {row[2]:>10}")
print("\nthe frameworks run everything -- but treating the UDF as a black "
      "box costs Ligra its cache locality and Gunrock its feature "
      "parallelism (plus atomics), exactly the paper's Sec. II-B argument.")
