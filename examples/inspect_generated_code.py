"""Inspecting what FeatGraph generates.

The paper's productivity claim rests on decoupling: a kernel author writes a
UDF and an FDS, and FeatGraph produces a fused kernel.  This example shows
all three artifacts a developer can inspect:

1. the **lowered loop-nest IR** of the fused kernel (template traversal
   loops + inlined, scheduled UDF),
2. the generated **CUDA C source** for the GPU schedules of Fig. 7a/7b,
3. the generated **Python kernel source** for a standalone dense compute.

Run:  python examples/inspect_generated_code.py
"""

import numpy as np

import repro.core as featgraph
from repro import tensorir as tvm
from repro.core import kernels
from repro.graph import from_edges
from repro.tensorir.ir import stmt_to_str

rng = np.random.default_rng(0)
n, m = 300, 6_000
adj = from_edges(n, n, rng.integers(0, n, m), rng.integers(0, n, m))

# --- 1. the fused-kernel IR ----------------------------------------------------
print("=" * 72)
print("fused MLP-aggregation kernel IR (template loops + scheduled UDF):")
print("=" * 72)
k = kernels.mlp_aggregation(adj, n, 8, 16)
print(stmt_to_str(k.lowered_ir()))

# --- 2. generated CUDA ------------------------------------------------------------
print()
print("=" * 72)
print("generated CUDA for GCN aggregation (Fig. 7a: row/block, feature/thread):")
print("=" * 72)
print(kernels.gcn_aggregation(adj, n, 64, target="gpu").cuda_source())

print("=" * 72)
print("generated CUDA for dot attention (Fig. 7b: edge/block, tree reduction):")
print("=" * 72)
print(kernels.dot_attention(adj, n, 64, target="gpu").cuda_source())

# --- 3. a standalone dense kernel through the full compiler ------------------------
print("=" * 72)
print("standalone dense kernel: split + unroll + vectorize schedule")
print("=" * 72)
X = tvm.placeholder((64, 32), name="X")
t = tvm.compute((64, 32), lambda i, j: tvm.relu(X[i, j] - 0.5), name="act")
s = tvm.create_schedule(t)
io, ii = s[t].split(t.op.axis[0], factor=4)
s[t].unroll(ii)
s[t].vectorize(t.op.axis[1])
kern = tvm.build(s, [X], name="relu_shift")
print(kern.source)

x = rng.random((64, 32), dtype=np.float32)
assert np.allclose(kern(x), np.maximum(x - 0.5, 0), atol=1e-6)
print("kernel output verified against numpy.")

# the GPU kernels are also checked for block-order independence
from repro.tensorir.gpusim import racecheck

A = tvm.placeholder((16, 32), name="A")
t2 = tvm.compute((16, 32), lambda i, j: A[i, j] * 2.0)
s2 = tvm.create_schedule(t2)
s2[t2].bind(t2.op.axis[0], "block.x")
s2[t2].bind(t2.op.axis[1], "thread.x")
kg = tvm.build(s2, [A], target="gpu")
racecheck(kg, rng.random((16, 32), dtype=np.float32), trials=4)
print("GPU kernel passed the block-order race check.")
