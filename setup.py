"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that minimal offline environments (no ``wheel`` package, so PEP 660 editable
builds fail) can still install with::

    python setup.py develop        # or: pip install -e . (where wheel exists)
"""

from setuptools import setup

setup()
