"""PR-4 consolidated benchmark: compiled UDF programs vs the tree-walk oracle.

Runs the Table III/IV workload suite (GCN aggregation, edge-weighted GAT
gather, MLP aggregation, dot-product attention, multi-head attention, edge
softmax) on a scaled dataset, executing every kernel twice -- once with the
vectorized straight-line program (``FEATGRAPH_UDF_COMPILE=1``) and once on
the interpreted tree-walk path (``=0``) -- and records per-kernel times,
speedups, bytes moved, and the geomean speedup to ``BENCH_PR4.json``.

The Table IV (GPU) variants of these workloads are modeled, not measured,
in this repository; the suite here measures the shared CPU execution path
that both tables' kernels compile through.

Usage::

    PYTHONPATH=src python benchmarks/bench_udf_compile.py            # quick
    PYTHONPATH=src python benchmarks/bench_udf_compile.py --check    # CI:
        # fail if any kernel regressed >2x vs the committed baseline or the
        # second compile sweep is not 100% cache-served
    PYTHONPATH=src python benchmarks/bench_udf_compile.py \
        --write-baseline   # refresh benchmarks/results/BENCH_PR4_baseline.json

Also collectable by pytest (``pytest benchmarks/bench_udf_compile.py``): the
smoke test runs a tiny-scale suite and asserts compiled/interpreted
agreement without touching the committed JSON files.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.api import sddmm, spmat, spmm
from repro.core.compile import KernelCache, use_kernel_cache
from repro.core.softmax import EdgeSoftmax
from repro.graph.datasets import load

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_PR4.json"
BASELINE_PATH = ROOT / "benchmarks" / "results" / "BENCH_PR4_baseline.json"

#: CI gate: a kernel is a regression when its compiled-path time exceeds
#: the committed baseline by more than this factor.
REGRESSION_FACTOR = 2.0

#: end-to-end sanity tolerance.  The 1e-5 contract holds per chunk (see
#: tests/core/test_compiled_vs_interpreted.py); the full-graph runs here
#: additionally reassociate the float32 scatter-add (the compiled path uses
#: workset-sized chunks), so high-degree rows accumulate ~1e-5 * O(sqrt(deg))
#: of rounding difference between the two orders.
ATOL = 1e-3


def _agree(got, ref):
    got = np.asarray(got, dtype=np.float64)
    ref = np.asarray(ref, dtype=np.float64)
    return got.shape == ref.shape and (
        got.size == 0
        or np.all(np.abs(got - ref) <= ATOL * np.maximum(np.abs(ref), 1.0)))


def build_suite(adj, rng):
    """The quick-mode kernel suite: name -> (make_kernel, bindings, runner).

    ``make_kernel()`` compiles through whatever kernel cache is active;
    ``runner(kernel, bindings)`` executes one full kernel invocation.
    """
    A = spmat(adj)
    n = max(A.num_src, A.num_dst)
    m = A.nnz

    def feat(*shape):
        return rng.standard_normal(shape).astype(np.float32)

    XV64 = T.placeholder((n, 64), name="XV")
    XV32 = T.placeholder((n, 32), name="XV")
    EW = T.placeholder((m,), name="EW")
    XV8 = T.placeholder((n, 8), name="XV")
    W = T.placeholder((8, 32), name="W")
    XH = T.placeholder((n, 4, 16), name="XV")

    def mlp_msg(src, dst, eid):
        k = T.reduce_axis((0, 8), name="k")
        return T.compute(
            (32,), lambda j: T.sum_reduce(XV8[src, k] * W[k, j], axis=k),
            name="mlp_msg")

    run = lambda kernel, bindings: kernel.run(bindings)  # noqa: E731
    suite = {
        "gcn_copyu_sum_f64": (
            lambda: spmm(A, dgl_builtins.copy_u_msg(XV64), "sum"),
            {"XV": feat(n, 64)}, run),
        "gat_umule_sum_f32": (
            lambda: spmm(A, dgl_builtins.u_mul_e_msg(XV32, EW), "sum"),
            {"XV": feat(n, 32), "EW": feat(m)}, run),
        "mlp_sum_d8x32": (
            lambda: spmm(A, mlp_msg, "sum"),
            {"XV": feat(n, 8), "W": feat(8, 32)}, run),
        "attn_udotv_d64": (
            lambda: sddmm(A, dgl_builtins.u_dot_v_edge(XV64, XV64)),
            {"XV": feat(n, 64)}, run),
        "attn_multihead_h4d16": (
            lambda: sddmm(A, dgl_builtins.u_dot_v_edge(XH, XH)),
            {"XV": feat(n, 4, 16)}, run),
        "edge_softmax_h4": (
            lambda: EdgeSoftmax(A, num_heads=4),
            {"scores": feat(m, 4)},
            lambda kernel, bindings: kernel.run(bindings["scores"])),
    }
    return suite


def _time_best(fn, repeats):
    fn()  # warmup: first call compiles lazily / touches caches
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _exec_stats(kernel):
    if isinstance(kernel, EdgeSoftmax):
        return kernel.exec_stats()
    return kernel.exec_stats.as_dict()


def run_suite(dataset="reddit", scale=1 / 256, repeats=3, log=print):
    """Execute the suite both ways; return the result payload."""
    ds = load(dataset, scale=scale)
    rng = np.random.default_rng(0)
    suite = build_suite(ds.adj, rng)
    saved = os.environ.get("FEATGRAPH_UDF_COMPILE")
    results = {}
    try:
        with use_kernel_cache(KernelCache()) as cache:
            kernels = {name: make() for name, (make, _, _) in suite.items()}
            first_sweep = cache.stats()
            # amortization gate: re-requesting every kernel must be
            # cache-served (no extra pipeline runs)
            for name, (make, _, _) in suite.items():
                make()
            second_sweep = cache.stats()

            for name, (_, bindings, runner) in suite.items():
                k = kernels[name]
                os.environ["FEATGRAPH_UDF_COMPILE"] = "0"
                ref = runner(k, bindings)
                interp_s = _time_best(lambda: runner(k, bindings), repeats)
                os.environ["FEATGRAPH_UDF_COMPILE"] = "1"
                got = runner(k, bindings)
                comp_s = _time_best(lambda: runner(k, bindings), repeats)
                if not _agree(got, ref):
                    raise AssertionError(
                        f"{name}: compiled and interpreted disagree (>1e-5)")
                st = _exec_stats(k)
                results[name] = {
                    "interpreted_s": interp_s,
                    "compiled_s": comp_s,
                    "speedup": interp_s / comp_s,
                    "exec_stats": st,
                }
                log(f"  {name:24s} interp {interp_s * 1e3:8.2f} ms   "
                    f"compiled {comp_s * 1e3:8.2f} ms   "
                    f"{interp_s / comp_s:5.2f}x")
    finally:
        if saved is None:
            os.environ.pop("FEATGRAPH_UDF_COMPILE", None)
        else:
            os.environ["FEATGRAPH_UDF_COMPILE"] = saved

    speedups = [r["speedup"] for r in results.values()]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "dataset": dataset,
        "scale": scale,
        "repeats": repeats,
        "kernels": results,
        "geomean_speedup": geomean,
        "cache": {
            "first_sweep": first_sweep,
            "second_sweep": second_sweep,
        },
    }


def check_cache_amortization(payload):
    """Second compile sweep must be 100% cache-served."""
    first, second = (payload["cache"]["first_sweep"],
                     payload["cache"]["second_sweep"])
    problems = []
    if second["pipeline_runs"] != first["pipeline_runs"]:
        problems.append(
            f"second sweep recompiled: pipeline_runs "
            f"{first['pipeline_runs']} -> {second['pipeline_runs']}")
    new_hits = second["hits"] - first["hits"]
    if new_hits < first["misses"]:
        problems.append(
            f"second sweep only {new_hits} hits for "
            f"{first['misses']} compiled kernels")
    return problems


def check_against_baseline(payload, baseline, log=print):
    """Compare compiled-path times to the committed baseline; return the
    list of regressions (>REGRESSION_FACTOR slower)."""
    problems = []
    log(f"\n  baseline comparison ({BASELINE_PATH.name}):")
    for name, r in payload["kernels"].items():
        base = baseline["kernels"].get(name)
        if base is None:
            log(f"  {name:24s} (no baseline entry)")
            continue
        ratio = r["compiled_s"] / base["compiled_s"]
        flag = "  REGRESSION" if ratio > REGRESSION_FACTOR else ""
        log(f"  {name:24s} {ratio:5.2f}x vs baseline{flag}")
        if ratio > REGRESSION_FACTOR:
            problems.append(
                f"{name}: compiled path {ratio:.2f}x slower than baseline "
                f"({r['compiled_s'] * 1e3:.2f} ms vs "
                f"{base['compiled_s'] * 1e3:.2f} ms)")
    return problems


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--dataset", default="reddit")
    ap.add_argument("--scale", type=float, default=1 / 256)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--check", action="store_true",
                    help="fail on >2x slowdown vs the committed baseline "
                         "or on a kernel-cache amortization miss")
    ap.add_argument("--write-baseline", action="store_true",
                    help=f"also write {BASELINE_PATH}")
    args = ap.parse_args(argv)

    print(f"PR-4 compiled-UDF suite: {args.dataset} @ 1/{1 / args.scale:.0f} "
          f"scale, best of {args.repeats}")
    payload = run_suite(args.dataset, args.scale, args.repeats)
    print(f"  geomean speedup (compiled vs interpreted): "
          f"{payload['geomean_speedup']:.2f}x")

    problems = check_cache_amortization(payload)
    if baseline := (json.loads(BASELINE_PATH.read_text())
                    if BASELINE_PATH.exists() else None):
        problems += check_against_baseline(payload, baseline)
    else:
        print("  (no committed baseline; skipping regression check)")

    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n  wrote {RESULT_PATH.relative_to(ROOT)}")
    if args.write_baseline:
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"  wrote {BASELINE_PATH.relative_to(ROOT)}")

    if problems:
        for p in problems:
            print(f"  FAIL: {p}", file=sys.stderr)
        if args.check:
            return 1
    return 0


# -- pytest entry point (quick smoke, no JSON output) -----------------------

def test_compiled_suite_smoke():
    """Tiny-scale sweep: compiled agrees with interpreted on every suite
    kernel, the geomean is recorded, and re-compilation is cache-served."""
    payload = run_suite(scale=1 / 2048, repeats=1, log=lambda *a: None)
    assert payload["geomean_speedup"] > 0
    assert len(payload["kernels"]) == 6
    assert check_cache_amortization(payload) == []
    for name, r in payload["kernels"].items():
        stats = r["exec_stats"]
        if name == "edge_softmax_h4":
            stats = stats["max"]
        assert stats["chunks"] > 0


if __name__ == "__main__":
    sys.exit(main())
