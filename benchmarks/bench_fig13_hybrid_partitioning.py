"""Fig. 13: effect of hybrid partitioning on GPU GCN aggregation
(rand-100K).

Three series: cuSPARSE (=1x), FeatGraph without hybrid partitioning,
FeatGraph with it.  Paper: the hybrid degree-split shared-memory scheme
buys 10%-20% and pushes FeatGraph past cuSPARSE on this bimodal-degree
graph.  The trade-off knob (degree threshold -> number of partitions) is
also swept via the actual partitioner.
"""

import numpy as np

from repro.bench import paper
from repro.bench.tables import Table
from repro.graph.partition import hybrid_degree_split
from repro.hwsim import gpu
from repro.hwsim.spec import TESLA_V100

from _common import record

FEATURES = (32, 64, 128, 256, 512)


def test_fig13_hybrid_partitioning(stats, scaled, features, benchmark):
    st = stats["rand-100K"]
    rows = {}
    for f in FEATURES:
        cs = gpu.spmm_row_block_time(TESLA_V100, st, f).seconds
        fg_no = gpu.spmm_row_block_time(TESLA_V100, st, f,
                                        kernel_efficiency=0.92).seconds
        fg_yes = gpu.spmm_row_block_time(TESLA_V100, st, f,
                                         kernel_efficiency=0.92,
                                         hybrid_partitioning=True).seconds
        rows[f] = {"cusparse": cs, "fg_no_hybrid": fg_no, "fg_hybrid": fg_yes}

    t = Table("Fig. 13: speedup over cuSPARSE (GCN agg, rand-100K, GPU)",
              ["f", "cuSPARSE", "FeatGraph w/o hybrid", "FeatGraph w/ hybrid",
               "hybrid boost", "paper boost band"])
    lo, hi = paper.FIG13_HYBRID_BOOST_RANGE
    for f in FEATURES:
        r = rows[f]
        t.add(f, "1.00x", f"{r['cusparse'] / r['fg_no_hybrid']:.2f}x",
              f"{r['cusparse'] / r['fg_hybrid']:.2f}x",
              f"{r['fg_no_hybrid'] / r['fg_hybrid']:.2f}x",
              f"{lo:.2f}x-{hi:.2f}x")
    t.show()
    record("fig13_hybrid", rows)

    boosts = [rows[f]["fg_no_hybrid"] / rows[f]["fg_hybrid"] for f in FEATURES]
    assert max(boosts) > 1.03          # hybrid helps
    assert max(boosts) < 1.6           # ...modestly, as in the paper
    # with hybrid partitioning FeatGraph beats cuSPARSE on this graph
    assert any(rows[f]["fg_hybrid"] < rows[f]["cusparse"] for f in FEATURES)

    # the paper's stated trade-off, on the real partitioner: a smaller degree
    # threshold => more shared-memory partitions
    ds = scaled["rand-100K"]
    shared_rows = TESLA_V100.shared_bytes_per_sm // (128 * 4)
    n_high_threshold = len(hybrid_degree_split(ds.adj, 200, shared_rows)
                           .high_partitions)
    n_low_threshold = len(hybrid_degree_split(ds.adj, 20, shared_rows)
                          .high_partitions)
    print(f"\npartitions at threshold 200: {n_high_threshold}, "
          f"at threshold 20: {n_low_threshold}\n")
    assert n_low_threshold >= n_high_threshold

    # measured: hybrid-partitioned GPU-target kernel execution
    from repro.core import kernels
    x = features(ds.num_vertices, 64)
    k = kernels.gcn_aggregation(ds.adj, ds.num_vertices, 64, target="gpu",
                                hybrid_partitioning=True)
    benchmark(lambda: k.run({"XV": x}))
