"""Table IV: GPU kernel performance (machine-model; V100-class spec).

Gunrock vs cuSPARSE (GCN only) vs FeatGraph on the three kernels.  The
measured column times the functional GPU-target kernels (numerically
simulated launches) on the scaled graphs.
"""

import numpy as np
import pytest

from repro.baselines import CuSparseBackend, GunrockBackend
from repro.bench import paper
from repro.bench.tables import Table
from repro.core.backend import FeatGraphBackend

from _common import record


@pytest.fixture(scope="module")
def backends():
    return {"Gunrock": GunrockBackend(), "cuSPARSE": CuSparseBackend(),
            "FeatGraph": FeatGraphBackend("gpu")}


def _series(stats, kernel, backends):
    out = {}
    for name, st in stats.items():
        out[name] = {}
        for bname, backend in backends.items():
            if not backend.supports(kernel):
                continue
            out[name][bname] = {f: backend.cost(kernel, st, f).seconds * 1e3
                                for f in paper.FEATURE_LENGTHS}
    return out


def _show(title, paper_table, repro):
    t = Table(title, ["dataset", "system", "f", "paper (ms)", "repro (ms)",
                      "paper FG-speedup", "repro FG-speedup"])
    for ds in paper.DATASETS:
        for system in paper_table[ds]:
            for f in paper.FEATURE_LENGTHS:
                p = paper_table[ds][system][f]
                r = repro[ds].get(system, {}).get(f)
                pfg = paper_table[ds]["FeatGraph"][f]
                rfg = repro[ds]["FeatGraph"][f]
                t.add(ds, system, f, f"{p:.1f}",
                      f"{r:.1f}" if r is not None else "N/A",
                      f"{p / pfg:.1f}x", f"{r / rfg:.1f}x" if r else "-")
    t.show()


def test_table4a_gcn_aggregation(stats, scaled, features, backends, benchmark):
    repro = _series(stats, "gcn_aggregation", backends)
    _show("Table IV(a): GCN aggregation, GPU", paper.TABLE4_GCN_MS, repro)
    record("table4a_gcn_gpu", repro)
    for ds in paper.DATASETS:
        for f in paper.FEATURE_LENGTHS:
            # Gunrock's atomics catastrophe (paper: 24x-206x)
            assert repro[ds]["Gunrock"][f] / repro[ds]["FeatGraph"][f] > 10
            # on par with cuSPARSE (paper: within ~20%)
            assert 0.5 < repro[ds]["cuSPARSE"][f] / repro[ds]["FeatGraph"][f] < 2.0
    ds = scaled["rand-100K"]
    x = features(ds.num_vertices, 64)
    fg = backends["FeatGraph"]
    benchmark(lambda: fg.gcn_aggregation(ds.adj, x))


def test_table4b_mlp_aggregation(stats, scaled, backends, benchmark):
    repro = _series(stats, "mlp_aggregation", backends)
    _show("Table IV(b): MLP aggregation, GPU", paper.TABLE4_MLP_MS, repro)
    record("table4b_mlp_gpu", repro)
    for ds in paper.DATASETS:
        for f in paper.FEATURE_LENGTHS:
            # paper: 18x-96x over Gunrock
            assert repro[ds]["Gunrock"][f] / repro[ds]["FeatGraph"][f] > 8
    ds = scaled["rand-100K"]
    rng = np.random.default_rng(2)
    x = rng.random((ds.num_vertices, 8), dtype=np.float32)
    w = rng.random((8, 32), dtype=np.float32)
    fg = backends["FeatGraph"]
    benchmark(lambda: fg.mlp_aggregation(ds.adj, x, w))


def test_table4c_dot_attention(stats, scaled, features, backends, benchmark):
    repro = _series(stats, "dot_attention", backends)
    _show("Table IV(c): dot-product attention, GPU",
          paper.TABLE4_ATTENTION_MS, repro)
    record("table4c_attention_gpu", repro)
    for ds in paper.DATASETS:
        for f in paper.FEATURE_LENGTHS:
            ratio = repro[ds]["Gunrock"][f] / repro[ds]["FeatGraph"][f]
            assert 0.9 < ratio < 5.0  # paper: modest 1.2x-3.1x
    ds = scaled["rand-100K"]
    x = features(ds.num_vertices, 64)
    fg = backends["FeatGraph"]
    benchmark(lambda: fg.dot_attention(ds.adj, x))
