"""Fig. 15: sensitivity to the number of CUDA blocks (GPU GCN aggregation,
reddit, f=128).

Paper: more blocks utilize the device better; time falls from ~100 ms at 256
blocks and flattens around 60 ms -- which is why FeatGraph sets the block
count to the number of adjacency rows.
"""

from repro.bench import paper
from repro.bench.tables import Table
from repro.hwsim import gpu
from repro.hwsim.spec import TESLA_V100

from _common import record

BLOCKS = (256, 1024, 4096, 16384, 65536, 262144)


def test_fig15_cuda_blocks(stats, benchmark):
    st = stats["reddit"]

    def sweep():
        return {b: gpu.spmm_row_block_time(TESLA_V100, st, 128,
                                           num_blocks=b).seconds * 1e3
                for b in BLOCKS}

    times = benchmark(sweep)

    t = Table("Fig. 15: time vs #CUDA blocks (GCN agg, reddit, f=128, GPU)",
              ["#blocks", "paper (ms)", "repro (ms)"])
    for b in BLOCKS:
        t.add(b, f"{paper.FIG15_BLOCKS_MS[b]:.0f}", f"{times[b]:.1f}")
    t.show()
    record("fig15_cuda_blocks", times)

    # monotone improvement, flattening at the tail
    vals = [times[b] for b in BLOCKS]
    assert all(a >= b for a, b in zip(vals, vals[1:]))
    assert vals[0] / vals[-1] > 1.2          # visible gain, like 100 -> 60
    assert vals[0] / vals[-1] < 4.0          # but bounded
    assert vals[-2] / vals[-1] < 1.1         # flat tail

    # default block count (one per row) is within a hair of the best
    default = gpu.spmm_row_block_time(TESLA_V100, st, 128).seconds * 1e3
    assert default <= vals[-1] * 1.05
