"""Sec. V-E accuracy sanity check: FeatGraph changes performance, never
semantics.

The paper trains GCN / GraphSage on reddit for 200 epochs and reports
identical test accuracy with either backend (93.7% / 93.1%).  We run the
same experiment on the planted-partition stand-in: both backends must reach
the same accuracy, and a high one.
"""

import pytest

from repro.bench import paper
from repro.bench.tables import Table
from repro.graph.datasets import planted_partition
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GCN, GraphSage
from repro.minidgl.train import train_model

from _common import record


def test_accuracy_parity(benchmark):
    ds = planted_partition(n=700, num_classes=5, feature_dim=24,
                           avg_degree=15, seed=13)
    results = {}

    def run_all():
        for model_name, model_cls in (("GCN", GCN), ("GraphSage", GraphSage)):
            for backend_name in ("minigun", "featgraph"):
                model = model_cls(24, 5, hidden=24, dropout=0.0, seed=4)
                res = train_model(model, ds, get_backend(backend_name),
                                  epochs=40, lr=0.02)
                results[(model_name, backend_name)] = res.test_accuracy
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    t = Table("Sec. V-E: test accuracy, DGL-default vs FeatGraph backend",
              ["model", "minigun backend", "featgraph backend",
               "paper (reddit)"])
    for model_name in ("GCN", "GraphSage"):
        t.add(model_name,
              f"{results[(model_name, 'minigun')]:.3f}",
              f"{results[(model_name, 'featgraph')]:.3f}",
              f"{paper.ACCURACY[model_name]:.3f}")
    t.show()
    record("accuracy_parity", {f"{k}": v for k, v in results.items()})

    for model_name in ("GCN", "GraphSage"):
        a = results[(model_name, "minigun")]
        b = results[(model_name, "featgraph")]
        assert a == pytest.approx(b, abs=0.02), model_name
        assert b > 0.75, model_name
