"""Extension bench: intelligent tuners vs naive grid search (paper Sec. VII
future work, "try more intelligent tuners for faster design space
exploration").

Compares the trial budget each tuner needs to reach (near-)optimal cost on
the real Fig. 14 scheduling landscape.
"""

from repro.bench.tables import Table
from repro.core.tuner import AnnealingTuner, GridTuner, RandomTuner
from repro.graph.datasets import paper_stats
from repro.hwsim import cpu
from repro.hwsim.spec import XEON_8124M

from _common import record

SPACE = {"graph": [1, 2, 4, 8, 16, 32, 64, 128, 256],
         "feature": [1, 2, 4, 8, 16, 32]}


def test_ablation_tuners(stats, benchmark):
    st = stats["reddit"]

    def evaluate(cfg):
        return cpu.spmm_time(XEON_8124M, st, 128, frame=cpu.FEATGRAPH_CPU,
                             num_graph_partitions=cfg["graph"],
                             num_feature_partitions=cfg["feature"])

    grid = benchmark(lambda: GridTuner(SPACE, evaluate).tune())
    rand = RandomTuner(SPACE, evaluate, num_trials=15, seed=0).tune()
    anneal = AnnealingTuner(SPACE, evaluate, num_trials=15, seed=0).tune()

    t = Table("Tuner comparison on the Fig. 14 landscape (reddit, f=128)",
              ["tuner", "trials", "best time (s)", "vs grid optimum"])
    for name, res in (("grid search (paper)", grid),
                      ("random search", rand),
                      ("simulated annealing", anneal)):
        t.add(name, len(res.trials), f"{res.best_cost.seconds:.3f}",
              f"{res.best_cost.seconds / grid.best_cost.seconds:.3f}x")
    t.show()
    record("ablation_tuners", {
        "grid": (len(grid.trials), grid.best_cost.seconds),
        "random": (len(rand.trials), rand.best_cost.seconds),
        "annealing": (len(anneal.trials), anneal.best_cost.seconds),
    })

    # intelligent tuners reach within 15% of the grid optimum with ~1/3 of
    # the trials -- the gain the paper's future-work remark is after
    assert len(rand.trials) <= len(grid.trials) // 3
    assert len(anneal.trials) <= len(grid.trials) // 3
    assert anneal.best_cost.seconds <= grid.best_cost.seconds * 1.15
    assert rand.best_cost.seconds <= grid.best_cost.seconds * 1.25
