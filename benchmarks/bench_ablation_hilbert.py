"""Extra ablation (DESIGN.md Sec. 5): Hilbert-curve edge traversal for CPU
edge-wise kernels.

The paper uses Hilbert traversal inside the SDDMM template (Sec. III-C1) but
shows no dedicated figure; this bench quantifies it with (a) the machine
model, and (b) a trace-driven cache simulation of the actual access streams,
CSR order vs Hilbert order, on the scaled graph.
"""

import numpy as np

from repro.bench.tables import Table
from repro.graph.hilbert import hilbert_order
from repro.hwsim import cpu
from repro.hwsim.cache import CacheSim
from repro.hwsim.spec import XEON_8124M

from _common import record

FEATURES = (64, 256, 512)


def test_ablation_hilbert_traversal(stats, scaled, benchmark):
    st = stats["reddit"]
    model_rows = {}
    for f in FEATURES:
        base = cpu.sddmm_time(XEON_8124M, st, f, frame=cpu.FEATGRAPH_CPU,
                              hilbert=False).seconds
        hil = cpu.sddmm_time(XEON_8124M, st, f, frame=cpu.FEATGRAPH_CPU,
                             hilbert=True).seconds
        model_rows[f] = (base, hil)

    # trace-driven: feature-row access stream of dot attention under both
    # traversal orders, through a small LRU cache
    ds = scaled["reddit"]
    adj = ds.adj
    dst = adj.row_of_edge()
    src = adj.indices
    row_bytes = 256 * 4
    cache_bytes = XEON_8124M.llc_bytes // 64  # LLC scaled like the graph

    def hit_rate(order):
        sim = CacheSim(cache_bytes)
        s, d = src[order], dst[order]
        stream = np.empty(2 * len(s), dtype=np.int64)
        stream[0::2] = s * row_bytes
        stream[1::2] = d * row_bytes + (1 << 40)  # disjoint feature matrices
        sim.access_array(stream)
        return sim.hit_rate

    csr_order = np.arange(adj.nnz)
    hil_order = benchmark(lambda: hilbert_order(dst, src, adj.shape[0],
                                                adj.shape[1]))
    hr_csr = hit_rate(csr_order)
    hr_hil = hit_rate(hil_order)

    t = Table("Ablation: Hilbert-curve traversal (dot attention, reddit)",
              ["f", "modeled CSR-order (s)", "modeled Hilbert (s)", "speedup"])
    for f in FEATURES:
        base, hil = model_rows[f]
        t.add(f, f"{base:.2f}", f"{hil:.2f}", f"{base / hil:.2f}x")
    t.show()
    print(f"trace-sim hit rate (scaled reddit, f=256): CSR={hr_csr:.3f}, "
          f"Hilbert={hr_hil:.3f}\n")
    record("ablation_hilbert", {"model": model_rows,
                                "trace_hit_rates": {"csr": hr_csr,
                                                    "hilbert": hr_hil}})

    assert all(hil <= base for base, hil in model_rows.values())
    assert hr_hil > hr_csr  # the mechanism is real, not just modeled
