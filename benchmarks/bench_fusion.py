"""PR-6 whole-chain fusion bench: staged vs fused GAT attention block.

The staged pipeline is the four-kernel route every GAT layer took before
fusion: EdgeSoftmax's max / exp-sum / normalize phases followed by a
separate ``u_mul_e`` sum-SpMM over the materialized ``(m, heads)``
attention tensor.  The fused pipeline is the same program compiled as one
kernel chain (:class:`repro.core.fusion.FusedEdgeSoftmax` with
``feat_shape``): a single CSR sweep, ``exp`` computed once (cross-kernel
CSE), the attention buffer elided entirely.

``--check`` gates three things and exits nonzero on any miss:

* fused output ``allclose`` to staged (the differential oracle);
* fused wall-clock >= ``SPEEDUP_FLOOR``x faster than staged;
* fused ``ExecStats.bytes_moved`` strictly below the staged sum, with at
  least one full per-edge intermediate recorded in ``plan.elided`` -- the
  buffer-elision acceptance of this PR;
* re-building the chain over a second topology is a pure template rebind
  (``fused_compiles`` stays 1).

Results go to ``BENCH_PR6.json`` at the repo root (and to
``benchmarks/results/fusion.json`` via :func:`_common.record`).

Usage::

    PYTHONPATH=src python benchmarks/bench_fusion.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro import tensorir as T
from repro.core.api import spmm
from repro.core.builtins import u_mul_e_msg
from repro.core.compile import KernelCache, use_kernel_cache
from repro.core.fusion import FusedEdgeSoftmax
from repro.core.softmax import EdgeSoftmax
from repro.graph.datasets import load

from _common import record

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_PR6.json"

#: fused GAT attention block must beat the staged route by this factor
SPEEDUP_FLOOR = 1.3
ATOL = 1e-4


def _agree(a: np.ndarray, b: np.ndarray, atol: float = ATOL) -> bool:
    scale = max(1.0, float(np.max(np.abs(b)))) if b.size else 1.0
    return bool(np.allclose(a, b, atol=atol * scale, rtol=1e-4))


def _time_best(fn, repeats: int) -> float:
    fn()  # warmup: lazy compiles, cache touches
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class StagedAttention:
    """The pre-fusion GAT attention block: 3-kernel edge softmax plus a
    separate weighted-aggregation SpMM over the materialized alpha."""

    def __init__(self, adj, heads: int, head_dim: int, cache):
        self.softmax = EdgeSoftmax(adj, heads, cache=cache, fused=False)
        n_src, m = adj.shape[1], adj.nnz
        XV = T.placeholder((n_src, heads, head_dim), name="XV")
        AL = T.placeholder((m, heads), name="AL")
        self.agg = spmm(adj, u_mul_e_msg(XV, AL), "sum", cache=cache)

    def run(self, scores: np.ndarray, z: np.ndarray) -> np.ndarray:
        alpha = self.softmax.run_staged(scores)
        return self.agg.run({"XV": z, "AL": alpha})

    def bytes_moved(self) -> int:
        phases = self.softmax.exec_stats()
        return (sum(phases[p]["bytes_moved"]
                    for p in ("max", "expsum", "normalize"))
                + self.agg.exec_stats.as_dict()["bytes_moved"])


def run_bench(dataset: str = "reddit", scale: float = 1 / 64,
              heads: int = 4, head_dim: int = 4, repeats: int = 5,
              log=print) -> dict:
    """Execute the attention block both ways; return the result payload."""
    ds = load(dataset, scale=scale)
    adj = ds.adj
    n_src, m = adj.shape[1], adj.nnz
    rng = np.random.default_rng(0)
    scores = rng.standard_normal((m, heads)).astype(np.float32)
    z = rng.standard_normal((n_src, heads, head_dim)).astype(np.float32)

    with use_kernel_cache(KernelCache()) as cache:
        staged = StagedAttention(adj, heads, head_dim, cache)
        fused = FusedEdgeSoftmax(adj, heads, cache=cache,
                                 feat_shape=(heads, head_dim))

        # one measured run each for the per-call byte traffic, before the
        # timing loop piles more chunks onto the counters
        ref = staged.run(scores, z)
        staged_bytes = staged.bytes_moved()
        got, alpha = fused.run_aggregate(scores, z)
        fused_bytes = fused.kernel.exec_stats.as_dict()["bytes_moved"]
        ok = _agree(got, ref)
        assert alpha is None  # inference: the (m, heads) buffer never exists

        staged_s = _time_best(lambda: staged.run(scores, z), repeats)
        fused_s = _time_best(lambda: fused.run_aggregate(scores, z), repeats)

        # rebinding the chain over a second topology must not recompile
        FusedEdgeSoftmax(load(dataset, scale=scale / 2).adj, heads,
                         cache=cache, feat_shape=(heads, head_dim))
        cache_stats = cache.stats()

    plan = fused.kernel.plan
    payload = {
        "dataset": dataset,
        "scale": scale,
        "graph": {"n_dst": adj.shape[0], "n_src": n_src, "nnz": m},
        "heads": heads,
        "head_dim": head_dim,
        "repeats": repeats,
        "staged_s": staged_s,
        "fused_s": fused_s,
        "speedup": staged_s / fused_s,
        "allclose": ok,
        "bytes_moved": {"staged": staged_bytes, "fused": fused_bytes},
        "elided": {
            "buffers": dict(plan.elided),
            "bytes_total": plan.bytes_elided(m),
        },
        "cse": [list(entry) for entry in plan.cse],
        "fused_cache": {k: v for k, v in cache_stats.items()
                        if k.startswith("fused_")},
    }
    log(f"  staged {staged_s * 1e3:8.2f} ms   fused {fused_s * 1e3:8.2f} ms"
        f"   {payload['speedup']:5.2f}x")
    log(f"  bytes_moved staged {staged_bytes:,}  fused {fused_bytes:,}  "
        f"({1 - fused_bytes / staged_bytes:.0%} less)")
    log(f"  elided per-edge buffers: {payload['elided']['buffers']} "
        f"({payload['elided']['bytes_total']:,} B at m={m})")
    return payload


def check(payload: dict, *, require_speedup: bool = True) -> list[str]:
    """Return the list of acceptance violations (empty = pass)."""
    problems = []
    if not payload["allclose"]:
        problems.append("fused output diverges from the staged oracle")
    if require_speedup and payload["speedup"] < SPEEDUP_FLOOR:
        problems.append(
            f"fused speedup {payload['speedup']:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor")
    bm = payload["bytes_moved"]
    if bm["fused"] >= bm["staged"]:
        problems.append(
            f"fused moved {bm['fused']:,} B, not below staged "
            f"{bm['staged']:,} B")
    if not payload["elided"]["buffers"]:
        problems.append("no per-edge intermediate buffer was elided")
    fc = payload["fused_cache"]
    if fc.get("fused_compiles") != 1 or fc.get("fused_binds", 0) < 1:
        problems.append(
            f"second topology was not a pure template rebind: {fc}")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--dataset", default="reddit")
    ap.add_argument("--scale", type=float, default=1 / 64)
    ap.add_argument("--heads", type=int, default=4)
    ap.add_argument("--head-dim", type=int, default=4)
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--check", action="store_true",
                    help=f"fail unless fused is >={SPEEDUP_FLOOR}x faster, "
                         "moves fewer bytes, elides a per-edge buffer, and "
                         "matches the staged oracle")
    args = ap.parse_args(argv)

    print(f"PR-6 fusion bench: {args.dataset} @ 1/{1 / args.scale:.0f} scale,"
          f" heads={args.heads}, head_dim={args.head_dim}, "
          f"best of {args.repeats}")
    payload = run_bench(args.dataset, args.scale, args.heads, args.head_dim,
                        args.repeats)

    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    record("fusion", payload)
    print(f"  wrote {RESULT_PATH.name}")

    problems = check(payload)
    if problems:
        for p in problems:
            print(f"  FAIL: {p}", file=sys.stderr)
        if args.check:
            return 1
    return 0


# -- pytest entry point (quick smoke, no timing gate) -----------------------

def test_fusion_bench_smoke():
    """Tiny-scale run: fused matches staged, moves fewer bytes, elides the
    attention buffer, and the second topology is a pure rebind.  The
    wall-clock floor is not asserted at smoke scale (timing noise)."""
    payload = run_bench(scale=1 / 512, repeats=1, log=lambda *a: None)
    assert check(payload, require_speedup=False) == []


if __name__ == "__main__":
    sys.exit(main())
