"""Extra ablation (DESIGN.md Sec. 5): fused kernels vs message
materialization.

The Table VI speedups rest on fusion: "existing GNN frameworks ... have to
materialize the messages on every edge, causing inefficiency in both
performance and memory consumption" (Sec. III-B).  This bench reports the
actual bytes materialized by the Minigun backend versus zero for FeatGraph
on a full GAT forward+backward, and times both backends on the same graph.
"""

import numpy as np

from repro.bench.tables import Table
from repro.graph.datasets import planted_partition
from repro.minidgl.autograd import Tensor
from repro.minidgl.backends import get_backend
from repro.minidgl.graph import Graph
from repro.minidgl.models import GAT
from repro.minidgl.train import cross_entropy

from _common import record


def test_ablation_fusion_memory_and_time(benchmark):
    ds = planted_partition(n=1200, num_classes=4, feature_dim=32,
                           avg_degree=40, seed=17)
    g = Graph(ds.adj)
    x = Tensor(ds.features)

    def one_step(backend):
        model = GAT(32, 4, hidden=32, num_heads=4, dropout=0.0, seed=3)
        loss = cross_entropy(model(g, x, backend), ds.labels, ds.train_mask)
        loss.backward()
        return float(loss.data)

    mg = get_backend("minigun")
    fg = get_backend("featgraph")
    loss_mg = one_step(mg)
    loss_fg = one_step(fg)
    assert abs(loss_mg - loss_fg) < 1e-3  # identical semantics

    import time
    t0 = time.perf_counter(); one_step(mg); t_mg = time.perf_counter() - t0
    t1 = time.perf_counter(); one_step(fg); t_fg = time.perf_counter() - t1

    edge_feature_bytes = ds.num_edges * 32 * 4
    t = Table("Ablation: fusion vs materialization (GAT fwd+bwd, scaled graph)",
              ["backend", "materialized bytes", "x edge-feature tensor",
               "step time (ms)"])
    t.add("minigun (materialize)", f"{mg.materialized_bytes:,}",
          f"{mg.materialized_bytes / edge_feature_bytes:.1f}x",
          f"{t_mg * 1e3:.1f}")
    t.add("featgraph (fused)", f"{fg.materialized_bytes:,}", "0.0x",
          f"{t_fg * 1e3:.1f}")
    t.show()
    record("ablation_fusion", {
        "minigun_bytes": mg.materialized_bytes,
        "featgraph_bytes": fg.materialized_bytes,
        "minigun_ms": t_mg * 1e3,
        "featgraph_ms": t_fg * 1e3,
    })

    # the memory claim: materialization costs multiple edge-feature tensors
    assert mg.materialized_bytes > 2 * edge_feature_bytes
    assert fg.materialized_bytes == 0

    benchmark(lambda: one_step(fg))
