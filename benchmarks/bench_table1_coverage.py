"""Table I: the flexibility / efficiency / platform matrix.

Probes every backend for kernel coverage (flexibility) and compares modeled
times at a representative point (efficiency), reconstructing the paper's
qualitative table from the implementations themselves.
"""

from repro.baselines import (
    CuSparseBackend,
    GunrockBackend,
    LigraBackend,
    MKLBackend,
)
from repro.baselines.common import KERNELS
from repro.bench.tables import Table
from repro.core.backend import FeatGraphBackend

from _common import record


def test_table1_coverage(stats, benchmark):
    backends = [LigraBackend(), GunrockBackend(), MKLBackend(),
                CuSparseBackend(), FeatGraphBackend("cpu"),
                FeatGraphBackend("gpu")]
    st = stats["reddit"]

    def probe():
        rows = {}
        for b in backends:
            covered = sum(b.supports(k) for k in KERNELS)
            flexibility = "high" if covered == len(KERNELS) else "low"
            # efficiency: compare against the best same-platform backend on
            # the one kernel everyone supports, at a small feature length
            # (the regime vendor libraries are tuned for)
            peers = [x for x in backends if x.platform == b.platform]
            mine = b.cost("gcn_aggregation", st, 32).seconds
            best = min(x.cost("gcn_aggregation", st, 32).seconds
                       for x in peers)
            efficiency = "high" if mine <= best * 2.5 else "low"
            rows[b.name] = (b.platform, flexibility, efficiency,
                            f"{covered}/{len(KERNELS)}")
        return rows

    rows = benchmark(probe)

    t = Table("Table I: backend characteristics (reconstructed)",
              ["system", "platform", "flexibility", "efficiency",
               "kernel coverage"])
    for name, (platform, flx, eff, cov) in rows.items():
        t.add(name, platform, flx, eff, cov)
    t.show()
    record("table1_coverage", rows)

    # the paper's Table I claims
    assert rows["Ligra"][1] == "high" and rows["Ligra"][2] == "low"
    assert rows["Gunrock"][1] == "high" and rows["Gunrock"][2] == "low"
    assert rows["MKL"][1] == "low" and rows["MKL"][2] == "high"
    assert rows["cuSPARSE"][1] == "low" and rows["cuSPARSE"][2] == "high"
    assert rows["FeatGraph-CPU"][1] == "high" and rows["FeatGraph-CPU"][2] == "high"
    assert rows["FeatGraph-GPU"][1] == "high" and rows["FeatGraph-GPU"][2] == "high"
