"""Table III: single-threaded CPU kernel performance.

Three kernels (GCN aggregation, MLP aggregation, dot-product attention) on
three datasets across feature lengths 32..512, comparing Ligra, MKL (GCN
only), and FeatGraph.

Modeled times come from the machine models at paper scale; the measured
column (pytest-benchmark) times the actual FeatGraph kernel execution on the
1/64-scale graph, confirming that the code paths being modeled really run.
"""

import numpy as np
import pytest

from repro.baselines import LigraBackend, MKLBackend
from repro.bench import paper
from repro.bench.tables import Table
from repro.core.backend import FeatGraphBackend

from _common import record


def _series(stats, kernel, backends, d1=8):
    out = {}
    for name, st in stats.items():
        out[name] = {}
        for bname, backend in backends.items():
            if not backend.supports(kernel):
                continue
            out[name][bname] = {
                f: backend.cost(kernel, st, f, d1=d1).seconds
                for f in paper.FEATURE_LENGTHS
            }
    return out


def _show(title, paper_table, repro, unit="s"):
    t = Table(title, ["dataset", "system", "f", "paper (s)", "repro (s)",
                      "paper FG-speedup", "repro FG-speedup"])
    for ds in paper.DATASETS:
        for system in paper_table[ds]:
            for f in paper.FEATURE_LENGTHS:
                p = paper_table[ds][system][f]
                r = repro[ds].get(system, {}).get(f)
                pfg = paper_table[ds]["FeatGraph"][f]
                rfg = repro[ds]["FeatGraph"][f]
                t.add(ds, system, f, f"{p:.2f}",
                      f"{r:.2f}" if r is not None else "N/A",
                      f"{p / pfg:.2f}x", f"{r / rfg:.2f}x" if r else "-")
    t.show()


@pytest.fixture(scope="module")
def backends():
    return {"Ligra": LigraBackend(), "MKL": MKLBackend(),
            "FeatGraph": FeatGraphBackend("cpu")}


def test_table3a_gcn_aggregation(stats, scaled, features, backends, benchmark):
    repro = _series(stats, "gcn_aggregation", backends)
    _show("Table III(a): GCN aggregation, single-threaded CPU",
          paper.TABLE3_GCN, repro)
    record("table3a_gcn", repro)
    # Shape assertions: FeatGraph wins everywhere vs Ligra; beats MKL at 512.
    for ds in paper.DATASETS:
        for f in paper.FEATURE_LENGTHS:
            assert repro[ds]["Ligra"][f] > repro[ds]["FeatGraph"][f]
        assert repro[ds]["MKL"][512] > repro[ds]["FeatGraph"][512]
    # Measured: run the real FeatGraph kernel on the scaled reddit graph.
    ds = scaled["reddit"]
    x = features(ds.num_vertices, 64)
    fg = backends["FeatGraph"]
    benchmark(lambda: fg.gcn_aggregation(ds.adj, x))


def test_table3b_mlp_aggregation(stats, scaled, backends, benchmark):
    repro = _series(stats, "mlp_aggregation", backends)
    _show("Table III(b): MLP aggregation (d1=8), single-threaded CPU",
          paper.TABLE3_MLP, repro)
    record("table3b_mlp", repro)
    for ds in paper.DATASETS:
        for f in paper.FEATURE_LENGTHS:
            ratio = repro[ds]["Ligra"][f] / repro[ds]["FeatGraph"][f]
            assert ratio > 2.5, (ds, f, ratio)  # paper band: 4.4x-5.5x
    ds = scaled["reddit"]
    rng = np.random.default_rng(1)
    x = rng.random((ds.num_vertices, 8), dtype=np.float32)
    w = rng.random((8, 32), dtype=np.float32)
    fg = backends["FeatGraph"]
    benchmark(lambda: fg.mlp_aggregation(ds.adj, x, w))


def test_table3c_dot_attention(stats, scaled, features, backends, benchmark):
    repro = _series(stats, "dot_attention", backends)
    _show("Table III(c): dot-product attention, single-threaded CPU",
          paper.TABLE3_ATTENTION, repro)
    record("table3c_attention", repro)
    for ds in paper.DATASETS:
        for f in paper.FEATURE_LENGTHS:
            ratio = repro[ds]["Ligra"][f] / repro[ds]["FeatGraph"][f]
            assert ratio > 1.5, (ds, f, ratio)  # paper band: 4.3x-6.0x
    ds = scaled["reddit"]
    x = features(ds.num_vertices, 64)
    fg = backends["FeatGraph"]
    benchmark(lambda: fg.dot_attention(ds.adj, x))
