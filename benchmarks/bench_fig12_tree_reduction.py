"""Fig. 12: effect of tree reduction on GPU dot-product attention
(rand-100K).

Three series, as in the figure: Gunrock (=1x), FeatGraph without tree
reduction, FeatGraph with tree reduction.  Paper: tree reduction boosts
performance by up to 2x, and the gap grows with feature length (register
pressure kills the one-thread-per-edge strategy).
"""

import numpy as np

from repro.bench import paper
from repro.bench.tables import Table
from repro.core import kernels
from repro.hwsim import gpu
from repro.hwsim.spec import TESLA_V100

from _common import record

FEATURES = (32, 64, 128, 256, 512)


def test_fig12_tree_reduction(stats, scaled, features, benchmark):
    st = stats["rand-100K"]
    rows = {}
    for f in FEATURES:
        gr = gpu.sddmm_thread_per_edge_time(TESLA_V100, st, f).seconds
        fg_no = gpu.sddmm_coop_time(TESLA_V100, st, f, tree_reduce=False).seconds
        fg_yes = gpu.sddmm_coop_time(TESLA_V100, st, f, tree_reduce=True).seconds
        rows[f] = {"gunrock": gr, "fg_no_tree": fg_no, "fg_tree": fg_yes}

    t = Table("Fig. 12: speedup over Gunrock (dot attention, rand-100K, GPU)",
              ["f", "Gunrock", "FeatGraph w/o tree reduce",
               "FeatGraph w/ tree reduce", "tree-reduce boost"])
    for f in FEATURES:
        r = rows[f]
        t.add(f, "1.00x", f"{r['gunrock'] / r['fg_no_tree']:.2f}x",
              f"{r['gunrock'] / r['fg_tree']:.2f}x",
              f"{r['fg_no_tree'] / r['fg_tree']:.2f}x")
    t.show()
    record("fig12_tree_reduction", rows)

    boosts = [rows[f]["fg_no_tree"] / rows[f]["fg_tree"] for f in FEATURES]
    # boost grows with f and reaches the paper's "up to 2x" territory
    assert boosts[-1] > boosts[0]
    assert max(boosts) > 1.8
    assert max(boosts) < paper.FIG12_TREE_REDUCTION_MAX_BOOST * 1.8

    # measured: the tree-reduce FDS kernel runs numerically
    ds = scaled["rand-100K"]
    x = features(ds.num_vertices, 128)
    k = kernels.dot_attention(ds.adj, ds.num_vertices, 128, target="gpu")
    assert k.tree_reduce
    benchmark(lambda: k.run({"XV": x}))
