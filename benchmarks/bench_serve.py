"""PR-10 serving benchmark: closed-loop load vs. the batch window.

A fleet of closed-loop clients hammers an
:class:`~repro.serve.InferenceService` with single-seed inference
requests; we report throughput and p50/p99 latency for ``batch_size=1``
serving (window 0, one seed per batch -- every request pays a full
sample + forward) against dynamic micro-batching at several batch
windows, plus the steady-state compile ledger.  Results go to
``BENCH_PR10.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # measure
    PYTHONPATH=src python benchmarks/bench_serve.py --check    # CI gate:
        # micro-batching >= 2x batch_size=1 throughput at equal-or-better
        # p99; zero kernel recompiles after warmup; batched throughput
        # within 4x of the committed baseline

The gate compares the *best* batch window, mirroring how an operator
would tune ``FEATGRAPH_BATCH_WINDOW_MS`` (docs/serving.md discusses the
trade-off: a longer window raises occupancy and throughput but puts its
own length on every request's latency).

Also collectable by pytest: the smoke test runs a miniature workload and
checks the gate invariants without touching the committed JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.compile import get_kernel_cache
from repro.graph.datasets import planted_partition
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GCN
from repro.serve import InferenceService

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_PR10.json"
BASELINE_PATH = ROOT / "benchmarks" / "results" / "BENCH_PR10_baseline.json"

#: CI gate: best-window micro-batched throughput over batch_size=1 serving
THROUGHPUT_FLOOR = 2.0
#: CI gate: best-window p99 must be equal-or-better (ratio <= 1)
P99_RATIO_CEILING = 1.0
#: CI gate: batched throughput may not fall more than this factor below
#: the committed baseline (loose -- CI runners vary widely)
BASELINE_SLOWDOWN_CEILING = 4.0

#: pipeline passes that must stay frozen during measured serving
EXPENSIVE_PASSES = ("build_expr", "fuse_fds", "lower", "validate",
                    "analyze", "simplify", "vectorize", "codegen")


def _workload(n=2000, num_classes=8, feature_dim=32, avg_degree=10):
    ds = planted_partition(n=n, num_classes=num_classes,
                           feature_dim=feature_dim, avg_degree=avg_degree,
                           seed=0)
    model = GCN(feature_dim, num_classes, hidden=16, dropout=0.0, seed=1)
    model.eval()
    return ds, model, get_backend("featgraph")


def run_closed_loop(svc: InferenceService, *, clients: int,
                    requests_per_client: int, n_vertices: int) -> dict:
    """Closed-loop load: each client thread submits single-seed requests
    back-to-back and waits for every reply.  Returns latency percentiles
    and sustained throughput."""
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(clients + 1)

    def client(cid: int) -> None:
        rng = np.random.default_rng(1000 + cid)
        seeds = rng.integers(0, n_vertices, size=requests_per_client)
        lat = latencies[cid]
        try:
            barrier.wait()
            for seed in seeds:
                t0 = time.perf_counter()
                svc.infer(int(seed), timeout=120.0)
                lat.append(time.perf_counter() - t0)
        except BaseException as exc:
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t_start
    if errors:
        raise errors[0]
    lat = np.array([x for per in latencies for x in per])
    stats = svc.stats()
    return {
        "requests": int(len(lat)),
        "elapsed_s": elapsed,
        "throughput_rps": len(lat) / elapsed,
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        "p99_ms": float(np.percentile(lat, 99) * 1e3),
        "mean_ms": float(lat.mean() * 1e3),
        "batches": stats["batches"],
        "mean_batch_requests": stats["mean_batch_requests"],
        "mean_batch_seeds": stats["mean_batch_seeds"],
        "cache_hit_rate": (stats["cache"] or {}).get("hit_rate"),
    }


def bench_serve(*, clients=8, requests_per_client=100, fanouts=(5, 5),
                windows_ms=(0.5, 2.0, 5.0), max_batch_seeds=64,
                feature_cache_bytes=1 << 20, n=2000, log=print) -> dict:
    ds, model, backend = _workload(n=n)

    def make_service(window_ms, batch_cap):
        return InferenceService(
            model, ds, backend, fanouts=list(fanouts),
            batch_window_ms=window_ms, max_batch_seeds=batch_cap,
            max_queue_depth=4 * clients,
            feature_cache_bytes=feature_cache_bytes,
            rng=np.random.default_rng(3))

    # warm the kernel templates once, then freeze the compile ledger: all
    # measured configs must serve by rebinding only
    cache = get_kernel_cache()
    with make_service(0.0, max_batch_seeds) as svc:
        svc.infer(np.arange(8))
        svc.infer(3)
    frozen = dict(cache.stats()["pass_counts"])
    runs_before = cache.stats()["pipeline_runs"]

    def measure(window_ms, batch_cap, label):
        with make_service(window_ms, batch_cap) as svc:
            out = run_closed_loop(svc, clients=clients,
                                  requests_per_client=requests_per_client,
                                  n_vertices=n)
        log(f"  {label:<18s} {out['throughput_rps']:8.0f} req/s   "
            f"p50 {out['p50_ms']:6.2f} ms   p99 {out['p99_ms']:6.2f} ms   "
            f"batch {out['mean_batch_seeds']:5.1f} seeds")
        return out

    unbatched = measure(0.0, 1, "batch_size=1")
    by_window = {str(w): measure(w, max_batch_seeds, f"window={w}ms")
                 for w in windows_ms}

    stats = cache.stats()
    recompiles = sum(stats["pass_counts"].get(p, 0) - frozen.get(p, 0)
                     for p in EXPENSIVE_PASSES)
    best = max(by_window, key=lambda w: by_window[w]["throughput_rps"])
    speedup = (by_window[best]["throughput_rps"]
               / unbatched["throughput_rps"])
    p99_ratio = by_window[best]["p99_ms"] / unbatched["p99_ms"]
    log(f"  best window {best} ms: {speedup:.2f}x throughput, "
        f"p99 ratio {p99_ratio:.2f}, "
        f"recompiles after warmup: {recompiles}")
    return {
        "workload": {"n": n, "clients": clients,
                     "requests_per_client": requests_per_client,
                     "fanouts": list(fanouts),
                     "max_batch_seeds": max_batch_seeds,
                     "feature_cache_bytes": feature_cache_bytes},
        "cpus": os.cpu_count() or 1,
        "unbatched": unbatched,
        "windows": by_window,
        "best_window_ms": best,
        "speedup": speedup,
        "p99_ratio": p99_ratio,
        "steady_state": {
            "recompiles_after_warmup": int(recompiles),
            "pipeline_runs_added": int(stats["pipeline_runs"] - runs_before),
            "binds": int(stats["binds"]),
        },
    }


def check(payload: dict, baseline: dict | None) -> list[str]:
    problems = []
    if payload["speedup"] < THROUGHPUT_FLOOR:
        problems.append(
            f"micro-batching speedup {payload['speedup']:.2f}x over "
            f"batch_size=1 (< {THROUGHPUT_FLOOR}x)")
    if payload["p99_ratio"] > P99_RATIO_CEILING:
        problems.append(
            f"best-window p99 is {payload['p99_ratio']:.2f}x the "
            f"batch_size=1 p99 (> {P99_RATIO_CEILING} -- batching must not "
            f"cost tail latency on a saturated closed loop)")
    ss = payload["steady_state"]
    if ss["recompiles_after_warmup"] or ss["pipeline_runs_added"]:
        problems.append(
            f"steady-state serving recompiled: "
            f"{ss['recompiles_after_warmup']} expensive pass runs, "
            f"{ss['pipeline_runs_added']} pipeline runs after warmup")
    if baseline is not None:
        best = payload["windows"][payload["best_window_ms"]]
        floor = (baseline["windows"][baseline["best_window_ms"]]
                 ["throughput_rps"] / BASELINE_SLOWDOWN_CEILING)
        if best["throughput_rps"] < floor:
            problems.append(
                f"batched throughput {best['throughput_rps']:.0f} req/s "
                f"fell below baseline/{BASELINE_SLOWDOWN_CEILING:.0f} "
                f"({floor:.0f} req/s)")
    return problems


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--check", action="store_true",
                    help="fail unless batching >= 2x at equal-or-better "
                         "p99 with zero steady-state recompiles")
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--requests", type=int, default=100,
                    help="requests per client per configuration")
    args = ap.parse_args(argv)

    print("PR-10 serving benchmark (closed-loop load, single-seed requests)")
    payload = bench_serve(clients=args.clients,
                          requests_per_client=args.requests)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {RESULT_PATH.relative_to(ROOT)}")

    baseline = (json.loads(BASELINE_PATH.read_text())
                if BASELINE_PATH.exists() else None)
    problems = check(payload, baseline)
    for p in problems:
        print(f"  FAIL: {p}", file=sys.stderr)
    return 1 if (problems and args.check) else 0


# -- pytest entry point (quick smoke, no JSON output) -----------------------

def test_serve_bench_smoke():
    """Miniature closed loop: batching helps, nothing recompiles."""
    payload = bench_serve(clients=4, requests_per_client=15, n=600,
                          windows_ms=(2.0,), log=lambda *a: None)
    assert payload["steady_state"]["recompiles_after_warmup"] == 0
    assert payload["speedup"] > 1.0
    assert payload["unbatched"]["requests"] == 60


if __name__ == "__main__":
    sys.exit(main())
