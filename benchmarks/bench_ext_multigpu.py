"""Extension bench: multi-GPU aggregation with NeuGraph-style streaming
(paper Sec. VII future work: "integrate FeatGraph into large-scale GNN
training systems such as NeuGraph to accelerate multi-GPU training").

Scales GCN aggregation on reddit (f=512) across 1-8 simulated V100s,
comparing the chain-based streaming schedule to a naive host-broadcast
schedule, and checks the numerics of the sharded execution.
"""

import numpy as np

from repro.bench.tables import Table
from repro.minidgl.multigpu import MultiGPUSpMM

from _common import record

GPUS = (1, 2, 4, 8)
F = 512


def test_ext_multigpu_scaling(stats, scaled, benchmark):
    st = stats["reddit"]
    ds = scaled["reddit"]
    rows = {}
    for gpus in GPUS:
        mg = MultiGPUSpMM(ds.adj, num_gpus=gpus, feature_len=F)
        rows[gpus] = {
            "chain": mg.speedup_over_single(st, "chain"),
            "host-to-all": mg.speedup_over_single(st, "host-to-all"),
        }

    t = Table("Multi-GPU GCN aggregation, reddit f=512 "
              "(speedup over one V100)",
              ["#GPUs", "chain streaming (NeuGraph-style)",
               "host-to-all broadcast"])
    for gpus in GPUS:
        t.add(gpus, f"{rows[gpus]['chain']:.2f}x",
              f"{rows[gpus]['host-to-all']:.2f}x")
    t.show()
    record("ext_multigpu", {str(k): v for k, v in rows.items()})

    # the NeuGraph result: chain streaming scales, broadcast saturates PCIe
    assert rows[8]["chain"] > 3.0
    assert rows[8]["chain"] > 2 * rows[8]["host-to-all"]
    chain_curve = [rows[g]["chain"] for g in GPUS]
    assert all(a < b for a, b in zip(chain_curve, chain_curve[1:]))

    # measured: sharded execution is numerically identical to single-device
    x = np.random.default_rng(7).random((ds.num_vertices, 64), dtype=np.float32)
    mg = MultiGPUSpMM(ds.adj, num_gpus=4, feature_len=64)
    out = benchmark(lambda: mg.run(x))
    ref = np.zeros_like(out)
    np.add.at(ref, ds.adj.row_of_edge(), x[ds.adj.indices])
    assert np.allclose(out, ref, atol=1e-3)
