"""PR-9 benchmark: per-chunk adaptive aggregation on a skew-mixed graph.

The workload is a graph built from two regimes glued together -- a
uniform region (many rows of equal degree 4, where the bucketed strategy
wins every chunk: one reshape + SIMD sum) followed by a skew region
(cycling degrees 1..32, where reduceat wins: bucketed pays a per-distinct
dispatch on every one of the 32 buckets).  No single whole-kernel
strategy is right for both halves, which is exactly the case the
per-chunk adaptive selector exists for.

The run first **calibrates the cost model on this machine** (a
chunk-scale-matched grid of synthetic workloads, non-negative
least-squares fit), points ``FEATGRAPH_COST_PROFILE`` at the fresh
profile, then measures **aggregate seconds** from the kernel's
``ExecStats`` for each whole-kernel strategy and for the adaptive
per-chunk plan.  Each measurement is the best of ``--rounds`` batches of
``--repeats`` runs, which keeps process-scheduling noise out of the
ratios.  Every strategy's output is parity-checked against a float64
``np.add.at`` oracle.

On a single-core runner the ``parallel`` strategy is recorded as skipped
(its combine degrades to the serial path, so timing it would just
duplicate reduceat) and it is excluded from the best-single comparison.

Usage::

    PYTHONPATH=src python benchmarks/bench_aggregate.py            # report
    PYTHONPATH=src python benchmarks/bench_aggregate.py --check    # CI:
        # fail unless the adaptive per-chunk plan beats the best single
        # whole-kernel strategy >=1.15x on aggregate seconds, parity
        # holds, and nothing regressed >2x vs the committed baseline
    PYTHONPATH=src python benchmarks/bench_aggregate.py \
        --write-baseline  # refresh benchmarks/results/BENCH_PR9_baseline.json

Also collectable by pytest: the smoke test runs a tiny scale with an
injected deterministic calibration measure and asserts parity plus plan
structure without touching the committed JSON files.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import tempfile
from collections import Counter
from pathlib import Path

import numpy as np

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.api import spmat, spmm
from repro.core.compile import KernelCache, use_kernel_cache
from repro.core.cost import COST_PROFILE_ENV
from repro.graph.sparse import CSRMatrix
from repro.runtime.calibrate import Workload, calibrate, save_profile
from repro.runtime.strategies import reset_cost_model_cache
from repro.tensorir.runtime import WorkPool

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_PR9.json"
BASELINE_PATH = ROOT / "benchmarks" / "results" / "BENCH_PR9_baseline.json"

#: CI gate: the adaptive per-chunk plan must beat the best single
#: whole-kernel strategy by at least this factor on aggregate seconds.
ADAPTIVE_GATE = 1.15

#: CI gate: a strategy is a regression when its aggregate seconds exceed
#: the committed baseline by more than this factor.
REGRESSION_FACTOR = 2.0

FEATURE_WIDTH = 64
CHUNK_EDGES = 2048

UNIFORM_ROWS = 16384
UNIFORM_DEGREE = 4
SKEW_CYCLES = 128
SKEW_MAX_DEGREE = 32
N_SRC = 4096


def build_skew_mixed_graph(scale: float = 1.0, seed: int = 0):
    """Uniform-degree region followed by a cycling-degree skew region.

    At full scale: 16384 rows of degree 4 (64Ki edges) then 128 cycles of
    degrees 1..32 (66Ki edges).  With 2048-edge chunks that is ~32 chunks
    of pure uniform shape and ~33 chunks of high-distinct shape -- the two
    regimes the calibrated model must tell apart.
    """
    uniform_rows = max(int(UNIFORM_ROWS * scale), 32)
    skew_cycles = max(int(SKEW_CYCLES * scale), 2)
    deg = np.concatenate([
        np.full(uniform_rows, UNIFORM_DEGREE, dtype=np.int64),
        np.tile(np.arange(1, SKEW_MAX_DEGREE + 1, dtype=np.int64),
                skew_cycles),
    ])
    indptr = np.concatenate([[0], np.cumsum(deg)])
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, N_SRC, int(deg.sum()))
    csr = CSRMatrix((len(deg), N_SRC), indptr, indices)
    meta = {"uniform_rows": uniform_rows, "uniform_degree": UNIFORM_DEGREE,
            "skew_cycles": skew_cycles, "skew_max_degree": SKEW_MAX_DEGREE,
            "n_src": N_SRC, "n_dst": len(deg), "edges": int(deg.sum())}
    return csr, meta


def calibration_grid(width: int = FEATURE_WIDTH,
                     chunk_edges: int = CHUNK_EDGES) -> list[Workload]:
    """Synthetic chunks matched to the benchmark's chunk scale.

    The default grid in :func:`repro.runtime.calibrate.workloads` spans
    sizes up to millions of edges; reduceat's cost is not affine across
    cache cliffs at that range, so a fit over it mispredicts small
    chunks.  This grid keeps every workload near ``chunk_edges`` while
    still separating the regimes: uniform degrees isolate the per-value
    term, cycling degrees the per-distinct dispatch.
    """
    grid: list[Workload] = []
    for d in (2, 4, 8):
        grid.append(Workload(f"uniform{d}",
                             np.full(max(chunk_edges // d, 4), d), width))
    for top in (16, 32, 48):
        cyc = np.arange(1, top + 1)
        reps = max(round(chunk_edges / int(cyc.sum())), 1)
        grid.append(Workload(f"cycle{top}", np.tile(cyc, reps), width))
    return grid


def _oracle(csr: CSRMatrix, x: np.ndarray) -> np.ndarray:
    out = np.zeros((csr.shape[0], x.shape[1]), dtype=np.float64)
    np.add.at(out, csr.row_of_edge(), x.astype(np.float64)[csr.indices])
    return out


def _agg_seconds(kernel, bindings, repeats: int, rounds: int) -> float:
    """Best-of-``rounds`` mean aggregate seconds over ``repeats`` runs."""
    kernel.run(bindings)  # warmup (compile + first-touch)
    best = math.inf
    for _ in range(rounds):
        before = kernel.exec_stats.as_dict()["aggregate_seconds"]
        for _ in range(repeats):
            kernel.run(bindings)
        after = kernel.exec_stats.as_dict()["aggregate_seconds"]
        best = min(best, (after - before) / repeats)
    return best


def run_suite(scale: float = 1.0, repeats: int = 3, rounds: int = 3,
              width: int = FEATURE_WIDTH, chunk_edges: int = CHUNK_EDGES,
              calibration_repeats: int = 5, measure=None, log=print):
    """Calibrate, measure every strategy plus adaptive; return the payload.

    ``measure(strategy_name, workload) -> seconds`` is forwarded to
    :func:`repro.runtime.calibrate.calibrate` so tests can inject
    deterministic timings instead of running the microbenchmarks.
    """
    csr, graph_meta = build_skew_mixed_graph(scale)
    cpu_count = os.cpu_count() or 1
    pool_meta = WorkPool()
    singles = ["reduceat", "bucketed"]
    parallel_skipped = None
    if cpu_count > 1 and pool_meta.num_workers > 1:
        singles.append("parallel")
    else:
        parallel_skipped = (f"single-core runner (cpu_count={cpu_count}, "
                            f"workers={pool_meta.num_workers}): parallel "
                            "combine degrades to the serial path")

    log(f"  calibrating cost model ({len(calibration_grid(width, chunk_edges))}"
        f" workloads x {calibration_repeats} repeats) ...")
    model = calibrate(measure=measure, repeats=calibration_repeats,
                      grid=calibration_grid(width, chunk_edges))

    old_profile = os.environ.get(COST_PROFILE_ENV)
    tmp = tempfile.NamedTemporaryFile(suffix=".json", delete=False)
    tmp.close()
    try:
        profile_path = save_profile(model, tmp.name)
        os.environ[COST_PROFILE_ENV] = str(profile_path)
        reset_cost_model_cache()

        A = spmat(csr)
        XV = T.placeholder((N_SRC, width), name="XV")
        with use_kernel_cache(KernelCache()):
            kernel = spmm(A, dgl_builtins.copy_u_msg(XV), "sum",
                          chunk_edges=chunk_edges)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((N_SRC, width)).astype(np.float32)
        bindings = {"XV": x}
        oracle = _oracle(csr, x)
        tol = 1e-4 * np.maximum(np.abs(oracle), 1.0)

        results = {}
        outputs = {}
        for name in singles + ["adaptive"]:
            kernel.agg_strategy = name
            outputs[name] = kernel.run(bindings)
            if not np.all(np.abs(outputs[name] - oracle) <= tol):
                raise AssertionError(
                    f"strategy {name} disagrees with the float64 oracle "
                    f"(max abs diff "
                    f"{float(np.max(np.abs(outputs[name] - oracle))):.3g})")
            agg_s = _agg_seconds(kernel, bindings, repeats, rounds)
            results[name] = {"aggregate_s": agg_s}
            log(f"  {name:9s} aggregate {agg_s * 1e3:8.2f} ms")

        if "parallel" in outputs and not np.array_equal(
                outputs["parallel"], outputs["reduceat"]):
            raise AssertionError("parallel is not bit-identical to reduceat")

        kernel.agg_strategy = "adaptive"
        acc = np.zeros((csr.shape[0], width), dtype=np.float32)
        plan = kernel.execution_plan(acc)
        assignments = Counter(
            s.name for s in plan.tasks[0].chunk_strategies or ())
        kernel.agg_strategy = None
    finally:
        if old_profile is None:
            os.environ.pop(COST_PROFILE_ENV, None)
        else:
            os.environ[COST_PROFILE_ENV] = old_profile
        reset_cost_model_cache()
        os.unlink(tmp.name)

    best_single = min(singles, key=lambda n: results[n]["aggregate_s"])
    speedup = (results[best_single]["aggregate_s"]
               / results["adaptive"]["aggregate_s"])
    for name in results:
        results[name]["speedup_vs_adaptive"] = (
            results[name]["aggregate_s"] / results["adaptive"]["aggregate_s"])
    return {
        "workload": "skew_mixed_copyu_sum",
        "graph": graph_meta,
        "width": width,
        "chunk_edges": chunk_edges,
        "repeats": repeats,
        "rounds": rounds,
        "cpu_count": cpu_count,
        "numpy_version": np.__version__,
        "workers": {"num_workers": pool_meta.num_workers,
                    "backend": pool_meta.backend},
        "parallel_skipped": parallel_skipped,
        "strategies": results,
        "adaptive_assignments": dict(assignments),
        "best_single": best_single,
        "adaptive_speedup_vs_best_single": speedup,
    }


def check_adaptive_gate(payload):
    """The adaptive per-chunk plan must clear ADAPTIVE_GATE."""
    speedup = payload["adaptive_speedup_vs_best_single"]
    assignments = payload["adaptive_assignments"]
    problems = []
    if len(assignments) < 2:
        problems.append(
            f"adaptive plan is not heterogeneous (assignments "
            f"{assignments}); the cost model is not separating the "
            "uniform and skew regions")
    if speedup < ADAPTIVE_GATE:
        problems.append(
            f"adaptive only {speedup:.2f}x faster than best single "
            f"strategy {payload['best_single']} on aggregate seconds "
            f"(gate {ADAPTIVE_GATE}x)")
    return problems


def check_against_baseline(payload, baseline, log=print):
    """Compare aggregate seconds to the committed baseline."""
    problems = []
    log(f"\n  baseline comparison ({BASELINE_PATH.name}):")
    for name, r in payload["strategies"].items():
        base = baseline["strategies"].get(name)
        if base is None:
            log(f"  {name:9s} (no baseline entry)")
            continue
        ratio = r["aggregate_s"] / base["aggregate_s"]
        flag = "  REGRESSION" if ratio > REGRESSION_FACTOR else ""
        log(f"  {name:9s} {ratio:5.2f}x vs baseline{flag}")
        if ratio > REGRESSION_FACTOR:
            problems.append(
                f"{name}: aggregate path {ratio:.2f}x slower than baseline "
                f"({r['aggregate_s'] * 1e3:.2f} ms vs "
                f"{base['aggregate_s'] * 1e3:.2f} ms)")
    return problems


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--check", action="store_true",
                    help="fail unless adaptive clears the "
                         f"{ADAPTIVE_GATE}x gate vs the best single "
                         "strategy and nothing regressed vs the baseline")
    ap.add_argument("--write-baseline", action="store_true",
                    help=f"also write {BASELINE_PATH}")
    args = ap.parse_args(argv)

    print(f"PR-9 adaptive aggregation: skew_mixed_copyu_sum @ "
          f"scale {args.scale:g}, F={FEATURE_WIDTH}, "
          f"chunk={CHUNK_EDGES}, best of {args.rounds}x{args.repeats}")
    payload = run_suite(args.scale, args.repeats, args.rounds)
    print(f"  assignments: {payload['adaptive_assignments']}")
    if payload["parallel_skipped"]:
        print(f"  parallel skipped: {payload['parallel_skipped']}")
    print(f"  adaptive vs best single ({payload['best_single']}): "
          f"{payload['adaptive_speedup_vs_best_single']:.2f}x")

    problems = check_adaptive_gate(payload)
    if baseline := (json.loads(BASELINE_PATH.read_text())
                    if BASELINE_PATH.exists() else None):
        problems += check_against_baseline(payload, baseline)
    else:
        print("  (no committed baseline; skipping regression check)")

    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n  wrote {RESULT_PATH.relative_to(ROOT)}")
    if args.write_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"  wrote {BASELINE_PATH.relative_to(ROOT)}")

    if problems:
        for p in problems:
            print(f"  FAIL: {p}", file=sys.stderr)
        if args.check:
            return 1
    return 0


# -- pytest entry point (quick smoke, no JSON output) -----------------------

def _synthetic_measure(name, wl):
    """Deterministic stand-in timings with the real strategies' shape:
    bucketed pays per distinct bucket, reduceat per segment."""
    s = wl.shape
    if name == "bucketed":
        return 2e-5 + 5e-6 * s.n_distinct + 2e-10 * s.values
    return 5e-6 + 5e-7 * s.n_segments + 4e-10 * s.values


def test_aggregate_adaptive_smoke():
    """Tiny-scale sweep with injected calibration timings: oracle parity
    holds, the plan is per-chunk heterogeneous, and stats are recorded."""
    payload = run_suite(scale=1 / 64, repeats=1, rounds=1, width=8,
                        chunk_edges=64, measure=_synthetic_measure,
                        log=lambda *a: None)
    assert "reduceat" in payload["strategies"]
    assert "adaptive" in payload["strategies"]
    for r in payload["strategies"].values():
        assert r["aggregate_s"] > 0
    n_chunks = sum(payload["adaptive_assignments"].values())
    assert n_chunks >= 2  # row-aligned chunks at 64 edges over ~1.3Ki edges
    assert payload["adaptive_speedup_vs_best_single"] > 0


if __name__ == "__main__":
    sys.exit(main())
