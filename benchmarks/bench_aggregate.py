"""PR-7 benchmark: segment-reduction strategies on GCN aggregation.

Runs the ``gcn_copyu_sum`` workload (copy-u message, sum aggregation,
F=64) once per execution strategy -- ``reduceat`` (the pre-engine
baseline), ``bucketed`` (degree-bucketed dense reductions), and
``parallel`` (WorkPool-sharded reduceat) -- and measures each strategy's
**aggregate seconds** from the kernel's ``ExecStats`` (the unified engine
books the segment-combine wall-clock separately from UDF evaluation, so
the strategies are compared on exactly the code they replace).

Every strategy's output is parity-checked against a float64 ``np.add.at``
oracle, and ``parallel`` must be bit-identical to ``reduceat``.

Usage::

    PYTHONPATH=src python benchmarks/bench_aggregate.py            # report
    PYTHONPATH=src python benchmarks/bench_aggregate.py --check    # CI:
        # fail unless the auto-selected strategy cuts gcn_copyu_sum
        # aggregate seconds >=2x vs the reduceat baseline, parity holds,
        # and nothing regressed >2x vs the committed baseline
    PYTHONPATH=src python benchmarks/bench_aggregate.py \
        --write-baseline  # refresh benchmarks/results/BENCH_PR7_baseline.json

Also collectable by pytest: the smoke test runs a tiny scale and asserts
parity plus stats accounting without touching the committed JSON files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro import tensorir as T
from repro.core import builtins as dgl_builtins
from repro.core.api import spmat, spmm
from repro.core.compile import KernelCache, use_kernel_cache
from repro.graph.datasets import load
from repro.runtime.strategies import STRATEGY_NAMES, select_strategy

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_PR7.json"
BASELINE_PATH = ROOT / "benchmarks" / "results" / "BENCH_PR7_baseline.json"

#: CI gate: the auto-selected strategy must cut aggregate seconds by at
#: least this factor vs the reduceat baseline on gcn_copyu_sum.
SPEEDUP_GATE = 2.0

#: CI gate: a strategy is a regression when its aggregate seconds exceed
#: the committed baseline by more than this factor.
REGRESSION_FACTOR = 2.0

FEATURE_WIDTH = 64


def _build_kernel(adj, width):
    A = spmat(adj)
    n = max(A.num_src, A.num_dst)
    XV = T.placeholder((n, width), name="XV")
    return A, spmm(A, dgl_builtins.copy_u_msg(XV), "sum"), n


def _oracle(A, x):
    csr = A.csr
    out = np.zeros((A.num_dst, x.shape[1]), dtype=np.float64)
    np.add.at(out, csr.row_of_edge(), x.astype(np.float64)[csr.indices])
    return out


def run_suite(dataset="reddit", scale=1 / 256, repeats=3, width=FEATURE_WIDTH,
              log=print):
    """Measure every strategy's aggregate seconds; return the payload."""
    ds = load(dataset, scale=scale)
    with use_kernel_cache(KernelCache()):
        A, kernel, n = _build_kernel(ds.adj, width)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((n, width)).astype(np.float32)
    bindings = {"XV": x}
    oracle = _oracle(A, x)
    tol = 1e-4 * np.maximum(np.abs(oracle), 1.0)

    degrees = np.diff(A.csr.indptr)
    auto = select_strategy(degrees, width)

    results = {}
    outputs = {}
    for name in STRATEGY_NAMES:
        kernel.agg_strategy = name
        kernel.run(bindings)  # warmup (also the parity-checked output)
        outputs[name] = kernel.run(bindings)
        if not np.all(np.abs(outputs[name] - oracle) <= tol):
            raise AssertionError(
                f"strategy {name} disagrees with the float64 oracle "
                f"(max abs diff "
                f"{float(np.max(np.abs(outputs[name] - oracle))):.3g})")
        before = kernel.exec_stats.as_dict()
        for _ in range(repeats):
            kernel.run(bindings)
        after = kernel.exec_stats.as_dict()
        agg_s = (after["aggregate_seconds"]
                 - before["aggregate_seconds"]) / repeats
        eval_s = (after["eval_seconds"] - before["eval_seconds"]) / repeats
        results[name] = {"aggregate_s": agg_s, "eval_s": eval_s}
        log(f"  {name:9s} aggregate {agg_s * 1e3:8.2f} ms   "
            f"eval {eval_s * 1e3:8.2f} ms")
    kernel.agg_strategy = None

    if not np.array_equal(outputs["parallel"], outputs["reduceat"]):
        raise AssertionError("parallel is not bit-identical to reduceat")

    base = results["reduceat"]["aggregate_s"]
    for name, r in results.items():
        r["speedup_vs_reduceat"] = base / r["aggregate_s"]
    return {
        "workload": "gcn_copyu_sum",
        "dataset": dataset,
        "scale": scale,
        "width": width,
        "repeats": repeats,
        "auto_strategy": auto,
        "strategies": results,
        "auto_speedup": results[auto]["speedup_vs_reduceat"],
    }


def check_speedup_gate(payload):
    """The auto-selected strategy must clear SPEEDUP_GATE."""
    auto = payload["auto_strategy"]
    speedup = payload["auto_speedup"]
    if auto == "reduceat":
        return [f"auto-selection picked the baseline ({auto}); the engine "
                f"is not engaging a faster strategy on this workload"]
    if speedup < SPEEDUP_GATE:
        return [f"auto strategy {auto} only {speedup:.2f}x faster than "
                f"reduceat on aggregate seconds (gate {SPEEDUP_GATE}x)"]
    return []


def check_against_baseline(payload, baseline, log=print):
    """Compare aggregate seconds to the committed baseline."""
    problems = []
    log(f"\n  baseline comparison ({BASELINE_PATH.name}):")
    for name, r in payload["strategies"].items():
        base = baseline["strategies"].get(name)
        if base is None:
            log(f"  {name:9s} (no baseline entry)")
            continue
        ratio = r["aggregate_s"] / base["aggregate_s"]
        flag = "  REGRESSION" if ratio > REGRESSION_FACTOR else ""
        log(f"  {name:9s} {ratio:5.2f}x vs baseline{flag}")
        if ratio > REGRESSION_FACTOR:
            problems.append(
                f"{name}: aggregate path {ratio:.2f}x slower than baseline "
                f"({r['aggregate_s'] * 1e3:.2f} ms vs "
                f"{base['aggregate_s'] * 1e3:.2f} ms)")
    return problems


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--dataset", default="reddit")
    ap.add_argument("--scale", type=float, default=1 / 256)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--check", action="store_true",
                    help="fail unless the auto strategy clears the "
                         f"{SPEEDUP_GATE}x aggregate-seconds gate and "
                         "nothing regressed vs the committed baseline")
    ap.add_argument("--write-baseline", action="store_true",
                    help=f"also write {BASELINE_PATH}")
    args = ap.parse_args(argv)

    print(f"PR-7 aggregation strategies: gcn_copyu_sum on {args.dataset} @ "
          f"1/{1 / args.scale:.0f} scale, F={FEATURE_WIDTH}, "
          f"mean of {args.repeats}")
    payload = run_suite(args.dataset, args.scale, args.repeats)
    print(f"  auto-selected: {payload['auto_strategy']} "
          f"({payload['auto_speedup']:.2f}x vs reduceat)")

    problems = check_speedup_gate(payload)
    if baseline := (json.loads(BASELINE_PATH.read_text())
                    if BASELINE_PATH.exists() else None):
        problems += check_against_baseline(payload, baseline)
    else:
        print("  (no committed baseline; skipping regression check)")

    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n  wrote {RESULT_PATH.relative_to(ROOT)}")
    if args.write_baseline:
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"  wrote {BASELINE_PATH.relative_to(ROOT)}")

    if problems:
        for p in problems:
            print(f"  FAIL: {p}", file=sys.stderr)
        if args.check:
            return 1
    return 0


# -- pytest entry point (quick smoke, no JSON output) -----------------------

def test_aggregate_strategy_smoke():
    """Tiny-scale sweep: every strategy passes the oracle parity check and
    the stats deltas are recorded per strategy."""
    payload = run_suite(scale=1 / 2048, repeats=1, width=8,
                        log=lambda *a: None)
    assert set(payload["strategies"]) == set(STRATEGY_NAMES)
    assert payload["auto_strategy"] in STRATEGY_NAMES
    for r in payload["strategies"].values():
        assert r["aggregate_s"] > 0


if __name__ == "__main__":
    sys.exit(main())
