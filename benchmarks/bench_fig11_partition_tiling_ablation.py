"""Fig. 11: effect of graph partitioning and feature tiling on CPU GCN
aggregation (reddit).

Four configurations: baseline / feature tiling alone / graph partitioning
alone / both.  Paper at f=512: 1.2x / 1.7x / 2.2x speedup over baseline.
Alongside the model, a *trace-driven* cache simulation on the scaled graph
verifies that the hit-rate mechanism is real, and the measured part times
the actual kernels in both configurations.
"""

import numpy as np
import pytest

from repro.bench import paper
from repro.bench.tables import Table
from repro.core import kernels
from repro.hwsim import cpu
from repro.hwsim.cache import CacheSim
from repro.hwsim.spec import XEON_8124M

from _common import record

FEATURES = (32, 64, 128, 256, 512)


def test_fig11_partition_tiling_ablation(stats, scaled, benchmark):
    st = stats["reddit"]
    # Each configuration tunes its free knob(s), as the paper does ("the
    # tiling factor is tunable"); the disabled knob is pinned to 1.
    np_grid = (1, 4, 16, 64, 256)
    nf_grid = (1, 2, 4, 8, 16)
    configs = {
        "baseline": ((1,), (1,)),
        "feature tiling": ((1,), nf_grid),
        "graph partitioning": (np_grid, (1,)),
        "feature tiling + graph partitioning": (np_grid, nf_grid),
    }
    speedups = {}
    for f in FEATURES:
        base = None
        for name, (nps, nfs) in configs.items():
            t = min(
                cpu.spmm_time(XEON_8124M, st, f, frame=cpu.FEATGRAPH_CPU,
                              num_graph_partitions=np_, num_feature_partitions=nf_
                              ).seconds
                for np_ in nps for nf_ in nfs
            )
            if name == "baseline":
                base = t
            speedups.setdefault(name, {})[f] = base / t

    t = Table("Fig. 11: speedup over unoptimized baseline (GCN agg, reddit)",
              ["config", "f=32", "f=64", "f=128", "f=256", "f=512",
               "paper @512"])
    for name in configs:
        pp = paper.FIG11_F512_SPEEDUPS.get(name)
        t.add(name, *[f"{speedups[name][f]:.2f}x" for f in FEATURES],
              f"{pp:.1f}x" if pp else "1.0x")
    t.show()
    record("fig11_ablation", speedups)

    # shape at f=512: both >= partitioning alone >= tiling alone >= 1
    s = {k: v[512] for k, v in speedups.items()}
    assert s["feature tiling + graph partitioning"] > s["graph partitioning"]
    assert s["graph partitioning"] >= s["feature tiling"]
    assert s["feature tiling"] >= 1.0
    assert s["feature tiling + graph partitioning"] > 1.4  # paper: 2.2x

    # trace-driven validation of the cache mechanism on the scaled graph
    from repro.graph.partition import partition_1d
    ds = scaled["reddit"]
    cache_bytes = XEON_8124M.llc_bytes // 64  # scaled LLC for scaled graph

    def hit_rate(num_parts, row_bytes):
        sim = CacheSim(cache_bytes)
        for p in partition_1d(ds.adj, num_parts):
            sim.access_array(p.csr.indices * row_bytes)
        return sim.hit_rate

    base_hr = hit_rate(1, 512 * 4)
    tiled_hr = hit_rate(1, 128 * 4)
    part_hr = hit_rate(16, 512 * 4)
    both_hr = hit_rate(16, 128 * 4)
    print(f"\ntrace-sim src-row hit rates (scaled reddit): baseline={base_hr:.3f} "
          f"tiling={tiled_hr:.3f} partitioning={part_hr:.3f} both={both_hr:.3f}\n")
    assert both_hr > base_hr
    assert part_hr > base_hr and tiled_hr >= base_hr

    # measured: optimized configuration end to end
    x = np.random.default_rng(3).random((ds.num_vertices, 128), dtype=np.float32)
    k_opt = kernels.gcn_aggregation(ds.adj, ds.num_vertices, 128,
                                    num_graph_partitions=8,
                                    num_feature_partitions=4)
    benchmark(lambda: k_opt.run({"XV": x}))
