"""Extension bench: vertex reordering as a preprocessing optimization.

Degree-descending relabeling packs hot feature rows together, the mechanism
behind both the GPU model's L2 degree-coverage term and the hybrid degree
split (paper Sec. III-C3).  This bench quantifies it two ways on the scaled
reddit graph: trace-driven hit rates of the real access stream, and measured
kernel wall-clock before/after reordering (semantics checked equal)."""

import numpy as np

from repro.bench.tables import Table
from repro.bench.timing import measure
from repro.core import kernels
from repro.graph.reorder import apply_vertex_order, degree_order, rcm_order
from repro.hwsim.cache import CacheSim

from _common import record


def test_ablation_reordering(scaled, benchmark):
    ds = scaled["reddit"]
    adj = ds.adj
    n = ds.num_vertices
    rng = np.random.default_rng(0)
    x = rng.random((n, 64), dtype=np.float32)

    orders = {
        "original": np.arange(n),
        "degree-descending": degree_order(adj),
        "reverse Cuthill-McKee": rcm_order(adj),
    }

    def hit_rate(a, cache_bytes=64 * 1024, row_bytes=256):
        sim = CacheSim(max(int(cache_bytes * 64 / row_bytes), 1024))
        sim.access_array(a.indices * 64)
        return sim.hit_rate

    rows = {}
    ref = None
    for name, order in orders.items():
        new_adj, new_x = apply_vertex_order(adj, order, x)
        hr = hit_rate(new_adj)
        k = kernels.gcn_aggregation(new_adj, n, 64)
        meas = measure(lambda: k.run({"XV": new_x}), runs=3, warmup=1)
        out = k.run({"XV": new_x})
        # map back to the original vertex order to compare semantics
        restored = np.empty_like(out)
        restored[order] = out
        if ref is None:
            ref = restored
        assert np.allclose(restored, ref, atol=1e-2), name
        rows[name] = (hr, meas.mean_seconds)

    t = Table("Ablation: vertex reordering (GCN agg, scaled reddit, f=64)",
              ["order", "trace-sim hit rate", "measured (ms)"])
    for name, (hr, secs) in rows.items():
        t.add(name, f"{hr:.3f}", f"{secs * 1e3:.1f}")
    t.show()
    record("ablation_reordering",
           {k: {"hit_rate": v[0], "seconds": v[1]} for k, v in rows.items()})

    # degree ordering must improve the simulated locality on this
    # hub-heavy graph
    assert rows["degree-descending"][0] > rows["original"][0]

    benchmark(lambda: degree_order(adj))
