"""Shared benchmark utilities.

Every bench prints a paper-vs-reproduced table (run pytest with ``-s`` to see
them) and appends its series to ``benchmarks/results/<experiment>.json`` so
EXPERIMENTS.md can be regenerated from an actual run.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: scale factor for graphs that are actually executed (not just modeled)
MEASURED_SCALE = 1 / 64


def record(experiment: str, payload: dict) -> None:
    """Persist one experiment's reproduced numbers as JSON."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))


def ratio_str(a: float | None, b: float | None) -> str:
    if not a or not b:
        return "-"
    return f"{a / b:.2f}x"
