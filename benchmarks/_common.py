"""Shared benchmark utilities.

Every bench prints a paper-vs-reproduced table (run pytest with ``-s`` to see
them) and appends its series to ``benchmarks/results/<experiment>.json`` so
EXPERIMENTS.md can be regenerated from an actual run.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: scale factor for graphs that are actually executed (not just modeled)
MEASURED_SCALE = 1 / 64


def record(experiment: str, payload: dict) -> None:
    """Persist one experiment's reproduced numbers as JSON."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))


def ratio_str(a: float | None, b: float | None) -> str:
    if not a or not b:
        return "-"
    return f"{a / b:.2f}x"


def compile_cache_stats() -> dict:
    """Snapshot of the process-wide kernel cache's accounting.

    Benches attach this to their payloads so a run records how much of its
    wall-clock went to compilation and how well the amortization worked.
    """
    from repro.core.compile import get_kernel_cache

    return get_kernel_cache().stats()


def reset_compile_cache() -> None:
    """Empty the process-wide kernel cache and zero its counters (so one
    bench's hit-rate numbers don't include kernels compiled by another)."""
    from repro.core.compile import get_kernel_cache

    get_kernel_cache().clear()
