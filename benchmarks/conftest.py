"""Benchmark fixtures: paper-scale statistics (for the machine models) and
scaled-down instantiated graphs (for measured wall-clock)."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.graph.datasets import load, paper_stats

from _common import MEASURED_SCALE


@pytest.fixture(scope="session")
def stats():
    """Paper-scale GraphStats per dataset (no edges materialized)."""
    return {name: paper_stats(name)
            for name in ("ogbn-proteins", "reddit", "rand-100K")}


@pytest.fixture(scope="session")
def scaled():
    """Scaled-down instantiated datasets for measured execution."""
    return {name: load(name, scale=MEASURED_SCALE)
            for name in ("ogbn-proteins", "reddit", "rand-100K")}


@pytest.fixture(scope="session")
def features():
    """Random feature matrices keyed by (dataset vertex count, f)."""
    cache = {}
    rng = np.random.default_rng(0)

    def get(n: int, f: int) -> np.ndarray:
        if (n, f) not in cache:
            cache[(n, f)] = rng.random((n, f), dtype=np.float32)
        return cache[(n, f)]

    return get
