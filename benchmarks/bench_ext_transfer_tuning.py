"""Extension bench: transferable tuning across graphs (paper Sec. V-D).

"Transferable tuning across graphs ... is more challenging and worth further
study."  This experiment tunes the partitioning factors on one graph and
deploys them, via the working-set-preserving transfer rule, on the others,
reporting regret against each target's own grid optimum.  It also checks the
paper's own transfer (Sec. V-E): factors tuned on GCN reused for GraphSage
and GAT by rescaling the feature partitions only.
"""

from repro.bench.tables import Table
from repro.core.transfer import TunedConfig, transfer_regret
from repro.core.tuner import GridTuner
from repro.hwsim import cpu
from repro.hwsim.spec import XEON_8124M

from _common import record

SPACE = {"graph": [1, 2, 4, 8, 16, 32, 64, 128, 256],
         "feature": [1, 2, 4, 8, 16, 32]}
DATASETS = ("ogbn-proteins", "reddit", "rand-100K")


def _evaluate(stats, f):
    def fn(cfg):
        return cpu.spmm_time(XEON_8124M, stats, f, frame=cpu.FEATGRAPH_CPU,
                             num_graph_partitions=cfg["graph"],
                             num_feature_partitions=cfg["feature"])
    return fn


def test_ext_transfer_tuning(stats, benchmark):
    f = 128
    tuned = {}

    def tune_all():
        for name in DATASETS:
            res = GridTuner(SPACE, _evaluate(stats[name], f)).tune()
            tuned[name] = TunedConfig(res.best_config["graph"],
                                      res.best_config["feature"],
                                      stats[name].n_src, f)
        return tuned

    benchmark(tune_all)

    t = Table("Transferable tuning: regret of source-tuned config on target "
              "(GCN agg, f=128)",
              ["source \\ target"] + list(DATASETS))
    rows = {}
    for src in DATASETS:
        cells = []
        for dst in DATASETS:
            regret, predicted, _ = transfer_regret(
                _evaluate(stats[dst], f), tuned[src], stats[dst], f, SPACE)
            rows[(src, dst)] = regret
            cells.append(f"{regret * 100:+.1f}%")
        t.add(src, *cells)
    t.show()
    record("ext_transfer_tuning", {f"{k}": v for k, v in rows.items()})

    # self-transfer is exact; cross-transfer within 25% of each optimum
    for src in DATASETS:
        assert rows[(src, src)] == 0.0
        for dst in DATASETS:
            assert rows[(src, dst)] < 0.25, (src, dst, rows[(src, dst)])

    # the paper's Sec. V-E transfer: keep graph partitions, rescale feature
    # partitions with the feature length
    base = tuned["reddit"]
    for f_new in (256, 512):
        regret, predicted, _ = transfer_regret(
            _evaluate(stats["reddit"], f_new), base, stats["reddit"],
            f_new, SPACE)
        assert predicted["graph"] == base.graph_partitions
        assert regret < 0.15, (f_new, regret)
