"""Compile-amortization smoke check (CI gate).

FeatGraph's integration story (paper Sec. IV-B) is that kernel compilation
happens once per graph topology and is amortized across message-passing
calls.  This script runs a tiny two-backend workload twice against the
process-wide kernel cache and asserts that the second run is compile-free:

- second-run cache hit rate >= 90%,
- zero second-run misses and pipeline runs (so compile time is ~0).

Run with ``PYTHONPATH=src python benchmarks/compile_amortization_smoke.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _common import compile_cache_stats, reset_compile_cache  # noqa: E402

from repro.core.backend import FeatGraphBackend  # noqa: E402
from repro.graph.sparse import from_edges  # noqa: E402
from repro.minidgl.backends import FeatGraphDGLBackend  # noqa: E402


def workload() -> None:
    """A small mixed workload: both backends, SpMM and SDDMM patterns."""
    rng = np.random.default_rng(0)
    m = 256
    adj = from_edges(64, 64, rng.integers(0, 64, m), rng.integers(0, 64, m))
    x = rng.standard_normal((64, 32)).astype(np.float32)
    w = rng.standard_normal((32, 8)).astype(np.float32)

    backend = FeatGraphBackend("cpu")
    backend.gcn_aggregation(adj, x)
    backend.mlp_aggregation(adj, x, w)
    backend.dot_attention(adj, x)

    dgl = FeatGraphDGLBackend("cpu")
    dgl.spmm_copy_sum(adj, x)
    dgl.sddmm_dot(adj, x, x)
    dgl.edge_softmax(adj, rng.standard_normal(adj.nnz).astype(np.float32))


def main() -> int:
    reset_compile_cache()

    workload()
    first = compile_cache_stats()
    if first["pipeline_runs"] == 0:
        print("FAIL: first run compiled nothing -- workload is broken")
        return 1

    cache_stats = compile_cache_stats  # alias for symmetry below
    from repro.core.compile import get_kernel_cache

    get_kernel_cache().reset_stats()
    workload()
    second = cache_stats()

    hit_rate = second["hit_rate"]
    print(f"first run : {first['pipeline_runs']} pipeline runs, "
          f"{first['compile_seconds'] * 1e3:.2f} ms compiling")
    print(f"second run: hit rate {hit_rate:.0%}, {second['misses']} misses, "
          f"{second['pipeline_runs']} pipeline runs, "
          f"{second['compile_seconds'] * 1e3:.2f} ms compiling")

    ok = True
    if hit_rate < 0.9:
        print(f"FAIL: second-run hit rate {hit_rate:.0%} < 90%")
        ok = False
    if second["misses"] != 0 or second["pipeline_runs"] != 0:
        print("FAIL: second run recompiled kernels; compilation is not "
              "amortized")
        ok = False
    if ok:
        print("OK: compilation fully amortized on the second run")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
