"""Table VI: end-to-end GNN training and inference, DGL w/o vs w/ FeatGraph.

Modeled seconds-per-epoch at reddit scale for GCN / GraphSage / GAT on CPU
and GPU, including the paper's GAT-training-OOM footnote.  The measured part
trains real (scaled) models on both minidgl backends and reports the actual
wall-clock speedup of the fused backend.
"""

import numpy as np
import pytest

from repro.bench import paper
from repro.bench.tables import Table
from repro.graph.datasets import planted_partition
from repro.minidgl import perfmodel
from repro.minidgl.backends import get_backend
from repro.minidgl.models import MODELS
from repro.minidgl.train import train_model

from _common import record

IN_DIM, CLASSES = 602, 41


def test_table6_end_to_end(stats, benchmark):
    st = stats["reddit"]
    rows = {}
    for platform in ("cpu", "gpu"):
        for phase, training in (("training", True), ("inference", False)):
            for model in ("GCN", "GraphSage", "GAT"):
                try:
                    wo = perfmodel.epoch_cost(model, st, IN_DIM, CLASSES,
                                              backend="minigun",
                                              platform=platform,
                                              training=training)
                except perfmodel.OOM:
                    wo = None
                w = perfmodel.epoch_cost(model, st, IN_DIM, CLASSES,
                                         backend="featgraph",
                                         platform=platform, training=training)
                rows[(platform, phase, model)] = (wo, w)

    t = Table("Table VI: end-to-end per-epoch time on reddit "
              "(DGL w/o FeatGraph -> DGL w/ FeatGraph)",
              ["platform", "phase", "model", "paper w/o", "repro w/o",
               "paper w/", "repro w/", "paper speedup", "repro speedup"])
    for key in rows:
        platform, phase, model = key
        p_wo, p_w = paper.TABLE6[key]
        r_wo, r_w = rows[key]
        t.add(platform, phase, model,
              f"{p_wo:.1f}" if p_wo else "OOM",
              f"{r_wo:.1f}" if r_wo else "OOM",
              f"{p_w:.2f}", f"{r_w:.2f}",
              f"{p_wo / p_w:.1f}x" if p_wo else "-",
              f"{r_wo / r_w:.1f}x" if r_wo else "-")
    t.show()
    record("table6_end_to_end",
           {f"{k}": v for k, v in rows.items()})

    # paper shapes: CPU speedups > 10x on all models; GPU 1.2x-6x; GAT OOM
    for model in ("GCN", "GraphSage", "GAT"):
        wo, w = rows[("cpu", "training", model)]
        assert wo / w > 10, model
    for model in ("GCN", "GraphSage"):
        wo, w = rows[("gpu", "training", model)]
        assert 1.2 < wo / w < 8, model
    assert rows[("gpu", "training", "GAT")][0] is None  # OOM reproduced
    assert rows[("gpu", "training", "GAT")][1] is not None

    # measured: real training on both backends at test scale; the fused
    # backend must not be slower (it is usually visibly faster)
    ds = planted_partition(n=800, num_classes=5, feature_dim=32,
                           avg_degree=30, seed=11)

    def train_pair():
        out = {}
        for name in ("minigun", "featgraph"):
            model = MODELS["GCN"](32, 5, hidden=32, dropout=0.0, seed=2)
            res = train_model(model, ds, get_backend(name), epochs=3)
            out[name] = res.mean_epoch_seconds
        return out

    times = benchmark.pedantic(train_pair, rounds=1, iterations=1)
    print(f"\nmeasured epoch time (scaled): minigun={times['minigun']*1e3:.1f} ms, "
          f"featgraph={times['featgraph']*1e3:.1f} ms\n")
