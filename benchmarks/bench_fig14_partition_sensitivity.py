"""Fig. 14: sensitivity to partitioning factors (CPU GCN aggregation,
reddit, f=128).

Sweeps the 4x4 grid of (#graph partitions, #feature partitions) through the
grid tuner and prints the landscape next to the paper's heatmap values.
Paper optimum: 16 graph partitions x 4 feature partitions; as f grows the
optimal feature-partition count grows proportionally while the graph
partition count stays put -- both trends asserted here.
"""

import numpy as np

from repro.bench import paper
from repro.bench.tables import Table
from repro.core.tuner import GridTuner
from repro.hwsim import cpu
from repro.hwsim.spec import XEON_8124M

from _common import record

GRAPH_PARTS = (1, 4, 16, 64)
FEATURE_PARTS = (1, 2, 4, 8)


def _tune(st, f):
    def evaluate(cfg):
        return cpu.spmm_time(XEON_8124M, st, f, frame=cpu.FEATGRAPH_CPU,
                             num_graph_partitions=cfg["graph"],
                             num_feature_partitions=cfg["feature"])

    return GridTuner({"graph": GRAPH_PARTS, "feature": FEATURE_PARTS},
                     evaluate).tune()


def test_fig14_partition_sensitivity(stats, benchmark):
    st = stats["reddit"]
    res = benchmark(lambda: _tune(st, 128))
    land = res.landscape("graph", "feature")

    t = Table("Fig. 14: time (s) by (#graph partitions, #feature partitions), "
              "reddit f=128",
              ["#graph \\ #feature"] + [str(nf) for nf in FEATURE_PARTS]
              + ["paper row"])
    for g in GRAPH_PARTS:
        paper_row = " / ".join(f"{paper.FIG14_GRID[(g, nf)]:.1f}"
                               for nf in FEATURE_PARTS)
        t.add(g, *[f"{land[(g, nf)]:.2f}" for nf in FEATURE_PARTS], paper_row)
    t.show()
    record("fig14_sensitivity", {f"{k}": v for k, v in land.items()})

    # the optimum is an interior cell with heavy partitioning on both axes,
    # like the paper's (16, 4)
    best = res.best_config
    assert best["graph"] >= 4 and best["feature"] >= 2
    assert land[(1, 1)] > res.best_cost.seconds * 1.5  # landscape is a bowl

    # paper: "as the feature length increases, the optimal number of feature
    # partitions increases proportionately, while the optimal number of
    # graph partitions stays constant"
    best_256 = _tune(st, 256).best_config
    best_512 = _tune(st, 512).best_config
    assert best_512["feature"] >= best_256["feature"] >= best["feature"]
    assert best_512["graph"] == best["graph"]
