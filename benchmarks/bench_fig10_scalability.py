"""Fig. 10: multi-threaded scaling of GCN aggregation (reddit, f=512).

FeatGraph's cooperative scheduling (all threads on one partition, avoiding
LLC contention) scales to 12.6x at 16 threads in the paper, versus 9.5x for
Ligra and 9.8x for MKL.  The modeled curves reproduce the ordering; an extra
ablation series shows the naive partition-per-thread strategy FeatGraph
avoids.  The measured part times the WorkPool running real partitioned
aggregation with 1 vs several workers.
"""

import numpy as np

from repro.bench import paper
from repro.bench.tables import Table
from repro.hwsim import cpu
from repro.hwsim.spec import XEON_8124M

from _common import record

THREADS = (1, 2, 4, 8, 16)
F = 512


def _speedups(frame, **kw):
    t1 = cpu.spmm_time(XEON_8124M, kw.pop("stats"), F, frame=frame,
                       threads=1, **kw).seconds
    out = {}
    for t in THREADS:
        tt = cpu.spmm_time(XEON_8124M, kw["stats"] if "stats" in kw else None,
                           F, frame=frame, threads=t, **kw)
        out[t] = t1 / tt.seconds
    return out


def test_fig10_scalability(stats, scaled, benchmark):
    st = stats["reddit"]

    def sweep(frame, **kw):
        t1 = cpu.spmm_time(XEON_8124M, st, F, frame=frame, threads=1, **kw).seconds
        return {t: t1 / cpu.spmm_time(XEON_8124M, st, F, frame=frame,
                                      threads=t, **kw).seconds
                for t in THREADS}

    fg = sweep(cpu.FEATGRAPH_CPU, num_graph_partitions=16,
               num_feature_partitions=16)
    lig = sweep(cpu.LIGRA_CPU)
    mkl = sweep(cpu.MKL_CPU)
    # ablation: FeatGraph schedule but partition-per-thread (non-cooperative)
    naive = sweep(cpu.FEATGRAPH_CPU.with_(cooperative_threads=False),
                  num_graph_partitions=16, num_feature_partitions=16)

    t = Table("Fig. 10: speedup over single-threaded (GCN agg, reddit, f=512)",
              ["threads", "FeatGraph paper", "FeatGraph repro", "Ligra paper",
               "Ligra repro", "MKL paper", "MKL repro",
               "FG partition-per-thread (ablation)"])
    for th in THREADS:
        t.add(th,
              f"{paper.FIG10_SCALABILITY['FeatGraph'][th]:.1f}x", f"{fg[th]:.1f}x",
              f"{paper.FIG10_SCALABILITY['Ligra'][th]:.1f}x", f"{lig[th]:.1f}x",
              f"{paper.FIG10_SCALABILITY['MKL'][th]:.1f}x", f"{mkl[th]:.1f}x",
              f"{naive[th]:.1f}x")
    t.show()
    record("fig10_scalability", {"FeatGraph": fg, "Ligra": lig, "MKL": mkl,
                                 "naive_partition_per_thread": naive})

    # shape: FeatGraph scales best; cooperative beats partition-per-thread
    assert fg[16] > lig[16] and fg[16] > mkl[16]
    assert fg[16] > naive[16]
    assert 8 < fg[16] <= 16

    # measured: cooperative partitioned aggregation through the WorkPool
    from repro.graph.partition import partition_1d
    from repro.graph.segment import segment_reduce
    from repro.tensorir.runtime import WorkPool

    ds = scaled["reddit"]
    x = np.random.default_rng(0).random((ds.num_vertices, 64), dtype=np.float32)
    parts = partition_1d(ds.adj, 4)
    pool = WorkPool(4)

    def run():
        out = np.zeros((ds.num_vertices, 64), dtype=np.float32)

        def work(part, lo, hi):
            csr = part.csr
            e0, e1 = csr.indptr[lo], csr.indptr[hi]
            if e1 > e0:
                seg = segment_reduce(x[csr.indices[e0:e1]],
                                     csr.indptr[lo:hi + 1] - e0, "sum")
                out[lo:hi] += seg
        pool.cooperative_for(parts, n_of=lambda p: ds.num_vertices, fn=work)
        return out

    benchmark(run)
    pool.shutdown()
