"""Table V: sensitivity to graph sparsity (uniform 100K-vertex graph,
f=128, CPU, FeatGraph vs MKL).

Paper: speedup over MKL grows from 1.10x at 99.95% sparsity to 2.91x at 95%,
"because a denser graph has more data reuse, which FeatGraph is able to
exploit by graph partitioning and feature dimension tiling".
"""

import numpy as np

from repro.bench import paper
from repro.bench.tables import Table
from repro.core.backend import FeatGraphBackend
from repro.baselines import MKLBackend
from repro.graph.datasets import paper_stats, uniform_random

from _common import record

SPARSITIES = (0.9995, 0.995, 0.95)
F = 128


def test_table5_sparsity(benchmark):
    fg = FeatGraphBackend("cpu")
    mkl = MKLBackend()
    rows = {}
    for sparsity in SPARSITIES:
        density = 1 - sparsity
        st = paper_stats(f"uniform-{density}")
        t_mkl = mkl.cost("gcn_aggregation", st, F).seconds
        t_fg = fg.cost("gcn_aggregation", st, F).seconds
        rows[sparsity] = (t_mkl, t_fg, t_mkl / t_fg)

    t = Table("Table V: sensitivity to sparsity (uniform 100K graph, f=128)",
              ["sparsity", "MKL paper (s)", "MKL repro (s)",
               "FeatGraph paper (s)", "FeatGraph repro (s)",
               "paper speedup", "repro speedup"])
    for sp in SPARSITIES:
        p_mkl, p_fg, p_sp = paper.TABLE5_SPARSITY[sp]
        r_mkl, r_fg, r_sp = rows[sp]
        t.add(f"{sp:.2%}", f"{p_mkl:.2f}", f"{r_mkl:.2f}",
              f"{p_fg:.2f}", f"{r_fg:.2f}", f"{p_sp:.2f}x", f"{r_sp:.2f}x")
    t.show()
    record("table5_sparsity", {str(k): v for k, v in rows.items()})

    # the paper's trend: denser graph => bigger FeatGraph advantage.  The
    # model overestimates the advantage at the sparsest point (1.9x vs the
    # paper's 1.10x -- see EXPERIMENTS.md) but the monotone trend and the
    # dense-end magnitude hold.
    speedups = [rows[sp][2] for sp in SPARSITIES]
    assert speedups[0] < speedups[1] < speedups[2]
    assert speedups[2] > 1.5
    assert speedups[0] < 2.0

    # measured: both backends execute the densest scaled instance correctly
    ds = uniform_random(1500, 0.05, seed=9)
    x = np.random.default_rng(4).random((1500, F), dtype=np.float32)

    def run_both():
        a = fg.gcn_aggregation(ds.adj, x)
        b = mkl.gcn_aggregation(ds.adj, x)
        assert np.allclose(a, b, atol=1e-2)
        return a

    benchmark(run_both)
