"""CI smoke check for the mini-batch training path (PR-5).

Asserts the three properties the mini-batch engine promises:

1. **Topology-independent kernel reuse**: after the first batch has compiled
   the layer kernels, every subsequent batch's fresh sampled blocks perform
   zero expression-building / FDS-fusion / lowering / vectorization work --
   the pipeline pass counters stay frozen and kernels are served by cheap
   per-topology binds.
2. **Analyzer-clean block kernels**: every kernel the run left in the cache
   (including bound ones) passes the static analyzer with no error-severity
   diagnostics for its target.
3. **End-to-end training**: two epochs of ``train_minibatch`` on a synthetic
   planted-partition task run to completion with finite, decreasing loss.

Usage::

    PYTHONPATH=src python benchmarks/minibatch_smoke.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.compile import KernelCache, use_kernel_cache
from repro.graph.datasets import planted_partition
from repro.minidgl.autograd import Tensor
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GraphSage
from repro.minidgl.sampling import BlockLoader
from repro.minidgl.train import cross_entropy, train_minibatch
from repro.tensorir.analysis import analyze_ir

#: the expensive topology-independent pipeline passes that must not re-run
#: once the first batch has populated the template cache
FRONT_AND_LOWER_PASSES = ("build_expr", "fuse_fds", "lower", "vectorize")


def check_kernel_reuse(ds, log=print):
    model = GraphSage(ds.features.shape[1], 4, hidden=16, dropout=0.0, seed=1)
    backend = get_backend("featgraph")
    train_ids = np.nonzero(ds.train_mask)[0]
    with use_kernel_cache(KernelCache()) as cache:
        loader = BlockLoader(ds.adj, train_ids, 64, [5, 5],
                             rng=np.random.default_rng(0), prefetch=2)
        after_first = None
        batches = 0
        for seeds, blocks in loader:
            x = Tensor(blocks[0].gather_src_features(ds.features))
            logits = model.forward_blocks(blocks, x, backend)
            # backward too: reverse-graph kernels must also be template hits
            loss = cross_entropy(logits, ds.labels[seeds],
                                 np.ones(len(seeds), dtype=bool))
            loss.backward()
            batches += 1
            if after_first is None:
                counts = cache.stats()["pass_counts"]
                after_first = {p: counts.get(p, 0)
                               for p in FRONT_AND_LOWER_PASSES}
        assert batches > 1, "need multiple batches to exercise reuse"

        s = cache.stats()
        for p in FRONT_AND_LOWER_PASSES:
            assert s["pass_counts"].get(p, 0) == after_first[p], (
                f"pass {p!r} re-ran after the first batch: "
                f"{after_first[p]} -> {s['pass_counts'].get(p, 0)}")
        assert s["binds"] > 0, "fresh blocks should re-bind cached templates"
        served = s["hits"] + s["binds"] + s["template_hits"]
        assert served > s["pipeline_runs"], (
            f"cache barely used: {served} served vs "
            f"{s['pipeline_runs']} pipeline runs")
        log(f"  reuse: {batches} batches, {s['pipeline_runs']} pipeline "
            f"runs, {s['binds']} binds, pass_counts frozen after batch 1")

        # analyzer gate on everything the run compiled or bound
        checked = 0
        for spec in cache.entries():
            kernel = cache.peek(spec)
            report = analyze_ir(kernel.lowered_ir(), target=spec.target)
            assert not report.has_errors, (
                f"analyzer errors on {spec.template} kernel: "
                f"{[str(d) for d in report.errors]}")
            checked += 1
        assert checked > 0
        log(f"  analyzer: {checked} cached block kernels, no error-severity "
            f"diagnostics")


def check_training(ds, log=print):
    model = GraphSage(ds.features.shape[1], 4, hidden=16, dropout=0.0, seed=2)
    res = train_minibatch(model, ds, get_backend("featgraph"),
                          fanouts=[5, 5], batch_size=64, epochs=2,
                          lr=0.05, seed=3, prefetch=2)
    assert len(res.train_losses) == 2
    assert all(np.isfinite(loss) for loss in res.train_losses)
    assert res.train_losses[-1] < res.train_losses[0], (
        f"loss did not decrease: {res.train_losses}")
    assert np.isfinite(res.test_accuracy)
    log(f"  training: losses {['%.3f' % l for l in res.train_losses]}, "
        f"test acc {res.test_accuracy:.3f}")


def main():
    print("mini-batch smoke")
    ds = planted_partition(n=300, num_classes=4, feature_dim=16,
                           avg_degree=10, seed=0)
    check_kernel_reuse(ds)
    check_training(ds)
    print("  OK")
    return 0


# -- pytest entry point ------------------------------------------------------

def test_minibatch_smoke():
    ds = planted_partition(n=200, num_classes=4, feature_dim=8,
                           avg_degree=8, seed=0)
    check_kernel_reuse(ds, log=lambda *a: None)
    check_training(ds, log=lambda *a: None)


if __name__ == "__main__":
    sys.exit(main())
