"""PR-5 mini-batch benchmark: vectorized sampling and prefetch overlap.

Two measurements, written to ``BENCH_PR5.json``:

1. **Sampler**: the vectorized :func:`~repro.minidgl.sampling.sample_neighbors`
   (bulk ``indptr`` slicing, one key draw, composite-key top-k, lookup-table
   remap) against the legacy per-seed Python loop this PR replaced (per-seed
   ``rng.choice`` + dict remap, preserved verbatim below as the baseline),
   across batch sizes.

2. **Training overlap**: per-epoch wall-clock of sampled GraphSage training
   with the :class:`~repro.minidgl.sampling.BlockLoader` prefetching blocks
   on a worker thread vs. sampling synchronously, everything else equal.
   With prefetch, sampling runs while the consumer computes, so on a
   multi-core host the epoch wall-clock should not exceed the no-prefetch
   baseline.  On a *single*-CPU host overlap is physically impossible (the
   producer thread has no core to run on while the consumer computes), so
   the gate instead bounds the thread-switching overhead the pipeline is
   allowed to add.

Usage::

    PYTHONPATH=src python benchmarks/bench_minibatch.py            # measure
    PYTHONPATH=src python benchmarks/bench_minibatch.py --check    # CI gate:
        # sampler >= 5x at batch >= 1024; prefetch epoch <= no-prefetch
        # (multi-core) / overhead-bounded (single-core)

Also collectable by pytest: the smoke test runs a tiny configuration and
checks the sampler invariants without touching the committed JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.graph.datasets import planted_partition
from repro.graph.sparse import from_edges
from repro.minidgl.backends import get_backend
from repro.minidgl.models import GraphSage
from repro.minidgl.sampling import sample_neighbors
from repro.minidgl.train import train_minibatch

ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_PR5.json"

#: CI gate: minimum vectorized-over-legacy sampler speedup at batch >= 1024
SAMPLER_SPEEDUP_FLOOR = 5.0
#: CI gate: prefetch epoch wall-clock must not exceed this fraction of the
#: synchronous baseline (1.0 = "no worse", with a hair of timer slack)
PREFETCH_RATIO_CEILING = 1.02
#: On a single-CPU host the producer thread cannot overlap with compute --
#: there is no second core for it to run on -- so instead of demanding a
#: win the gate bounds the GIL/context-switch overhead the prefetch
#: pipeline may add over synchronous sampling.
SINGLE_CORE_RATIO_CEILING = 1.15


def legacy_sample_neighbors(adj, seeds, fanout, rng):
    """The pre-PR5 per-seed sampler, kept verbatim as the benchmark
    baseline: a Python loop with one ``rng.choice`` per seed and a
    dict-based id remap."""
    picked_src, picked_dst = [], []
    for local, v in enumerate(seeds):
        start, end = adj.indptr[v], adj.indptr[v + 1]
        neigh = adj.indices[start:end]
        if len(neigh) > fanout:
            idx = rng.choice(len(neigh), size=fanout, replace=False)
            neigh = neigh[idx]
        picked_src.append(neigh)
        picked_dst.append(np.full(len(neigh), local, dtype=np.int64))
    g_src = (np.concatenate(picked_src) if picked_src
             else np.empty(0, np.int64))
    l_dst = (np.concatenate(picked_dst) if picked_dst
             else np.empty(0, np.int64))
    frontier = np.setdiff1d(np.unique(g_src), seeds)
    src_ids = np.concatenate([seeds, frontier])
    remap = {int(g): i for i, g in enumerate(src_ids)}
    l_src = np.fromiter((remap[int(g)] for g in g_src), dtype=np.int64,
                        count=len(g_src))
    return from_edges(len(src_ids), len(seeds), l_src, l_dst)


def _time_best(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_sampler(n=50_000, m=800_000, fanout=10,
                  batch_sizes=(256, 1024, 4096), repeats=5, log=print):
    r = np.random.default_rng(0)
    adj = from_edges(n, n, r.integers(0, n, m), r.integers(0, n, m))
    out = {}
    for bs in batch_sizes:
        seeds = r.choice(n, bs, replace=False)
        vec_s = _time_best(
            lambda: sample_neighbors(adj, seeds, fanout,
                                     np.random.default_rng(42)), repeats)
        legacy_s = _time_best(
            lambda: legacy_sample_neighbors(adj, seeds, fanout,
                                            np.random.default_rng(42)),
            repeats)
        out[str(bs)] = {
            "vectorized_s": vec_s,
            "legacy_s": legacy_s,
            "speedup": legacy_s / vec_s,
        }
        log(f"  sampler batch={bs:5d}  vec {vec_s * 1e3:7.2f} ms   "
            f"legacy {legacy_s * 1e3:8.2f} ms   {legacy_s / vec_s:5.1f}x")
    return {"n": n, "m": m, "fanout": fanout, "repeats": repeats,
            "batches": out}


def bench_prefetch(n=3000, avg_degree=12, feature_dim=32, epochs=4,
                   batch_size=256, fanouts=(10, 10), repeats=3, log=print):
    """Sampled GraphSage training, prefetch on vs. off; reports the best
    (min over repeats) steady-state epoch wall-clock of each mode."""
    ds = planted_partition(n=n, num_classes=4, feature_dim=feature_dim,
                           avg_degree=avg_degree, seed=0)
    results = {}
    for mode, prefetch in (("no_prefetch", 0), ("prefetch", 4)):
        best_epoch = float("inf")
        sample_s = compute_s = 0.0
        for rep in range(repeats):
            model = GraphSage(feature_dim, 4, hidden=32, dropout=0.0, seed=1)
            res = train_minibatch(
                model, ds, get_backend("featgraph"), fanouts=list(fanouts),
                batch_size=batch_size, epochs=epochs, lr=0.03, seed=5,
                prefetch=prefetch)
            # epoch 0 pays kernel-template compilation; steady state is
            # what overlap affects
            best_epoch = min(best_epoch, min(res.epoch_seconds[1:]))
            sample_s = sum(res.sample_seconds[1:])
            compute_s = sum(res.compute_seconds[1:])
        results[mode] = {
            "best_epoch_s": best_epoch,
            "sample_s_per_run": sample_s,
            "compute_s_per_run": compute_s,
        }
        log(f"  train {mode:12s} best epoch {best_epoch * 1e3:8.2f} ms   "
            f"(sample {sample_s * 1e3:.1f} ms, "
            f"compute {compute_s * 1e3:.1f} ms per run)")
    ratio = (results["prefetch"]["best_epoch_s"]
             / results["no_prefetch"]["best_epoch_s"])
    log(f"  prefetch/no-prefetch epoch ratio: {ratio:.3f}")
    return {"n": n, "epochs": epochs, "batch_size": batch_size,
            "fanouts": list(fanouts), "repeats": repeats,
            "cpus": os.cpu_count() or 1,
            "modes": results, "epoch_ratio": ratio}


def check(payload):
    problems = []
    for bs, r in payload["sampler"]["batches"].items():
        if int(bs) >= 1024 and r["speedup"] < SAMPLER_SPEEDUP_FLOOR:
            problems.append(
                f"sampler speedup at batch {bs} is {r['speedup']:.1f}x "
                f"(< {SAMPLER_SPEEDUP_FLOOR}x)")
    ratio = payload["prefetch"]["epoch_ratio"]
    if payload["prefetch"].get("cpus", 1) > 1:
        ceiling, regime = PREFETCH_RATIO_CEILING, "multi-core"
    else:
        ceiling, regime = SINGLE_CORE_RATIO_CEILING, "single-core"
    if ratio > ceiling:
        problems.append(
            f"prefetch epoch wall-clock {ratio:.3f}x the synchronous "
            f"baseline (> {ceiling}, {regime} gate)")
    return problems


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--check", action="store_true",
                    help="fail unless sampler >= 5x at batch >= 1024 and "
                         "prefetch epochs are no slower than synchronous")
    ap.add_argument("--repeats", type=int, default=5)
    args = ap.parse_args(argv)

    print("PR-5 mini-batch benchmark")
    payload = {
        "sampler": bench_sampler(repeats=args.repeats),
        "prefetch": bench_prefetch(repeats=max(2, args.repeats - 2)),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  wrote {RESULT_PATH.relative_to(ROOT)}")

    problems = check(payload)
    for p in problems:
        print(f"  FAIL: {p}", file=sys.stderr)
    return 1 if (problems and args.check) else 0


# -- pytest entry point (quick smoke, no JSON output) -----------------------

def test_minibatch_bench_smoke():
    """Tiny configuration: the vectorized sampler beats the legacy loop and
    both select structurally equal blocks."""
    payload = bench_sampler(n=2000, m=20_000, batch_sizes=(512,),
                            repeats=2, log=lambda *a: None)
    assert payload["batches"]["512"]["speedup"] > 1.0

    r = np.random.default_rng(3)
    adj = from_edges(500, 500, r.integers(0, 500, 4000),
                     r.integers(0, 500, 4000))
    seeds = r.choice(500, 64, replace=False)
    block = sample_neighbors(adj, seeds, 5, np.random.default_rng(1))
    legacy_adj = legacy_sample_neighbors(adj, seeds, 5,
                                         np.random.default_rng(1))
    # different RNG consumption, but identical structural invariants
    assert block.adj.shape[0] == legacy_adj.shape[0] == len(seeds)
    assert np.diff(block.adj.indptr).max() <= 5
    assert np.diff(legacy_adj.indptr).max() <= 5


if __name__ == "__main__":
    sys.exit(main())
